"""Operation counting and the calibrated latency model (Figure 2, Table 2).

The paper measures its LSTM on an Intel i7-8700 and reports anchors:
>150 us FP32 inference, >60 us after INT8 quantization, >1 ms per training
example, with the Hebbian network "proportionately lower" given its op
counts (Table 2).  We cannot reproduce an i7-8700 from Python, so this
module does two honest things instead (substitution #2 in DESIGN.md):

1. Count operations *exactly* from the model configurations (these are the
   Table 2 numbers and are hardware-independent).
2. Convert op counts to microseconds with per-op latencies calibrated once
   so the paper's LSTM config lands at its published anchors.  Every other
   latency in Figure 2 (future-prediction sweep, batch sweep, threading,
   quantization, the Hebbian bars) then *follows from the op counts* —
   nothing else is fitted.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .hebbian import HebbianConfig
from .lstm import LSTMConfig


@dataclass(frozen=True)
class OpCount:
    """Operation totals for one model invocation.

    Attributes:
        fp_ops: Floating-point multiply-accumulate-class ops.
        transcendental_ops: sigmoid/tanh/exp evaluations.
        int_ops: Integer add/compare-class ops.
        param_bytes: Parameter storage touched (bytes).
    """

    fp_ops: int = 0
    transcendental_ops: int = 0
    int_ops: int = 0
    param_bytes: int = 0

    def __add__(self, other: "OpCount") -> "OpCount":
        return OpCount(
            fp_ops=self.fp_ops + other.fp_ops,
            transcendental_ops=self.transcendental_ops + other.transcendental_ops,
            int_ops=self.int_ops + other.int_ops,
            param_bytes=max(self.param_bytes, other.param_bytes),
        )

    def scaled(self, factor: float) -> "OpCount":
        return OpCount(
            fp_ops=int(self.fp_ops * factor),
            transcendental_ops=int(self.transcendental_ops * factor),
            int_ops=int(self.int_ops * factor),
            param_bytes=self.param_bytes,
        )

    @property
    def total_ops(self) -> int:
        return self.fp_ops + self.transcendental_ops + self.int_ops


# ----------------------------------------------------------------------
# LSTM op counts
# ----------------------------------------------------------------------
def lstm_inference_ops(config: LSTMConfig = LSTMConfig(),
                       future_steps: int = 1,
                       quantized: bool = False) -> OpCount:
    """Ops for one prediction, rolled out ``future_steps`` into the future.

    One LSTM step is 4H(E+H) recurrent MACs plus HV output MACs plus 5H
    gate transcendentals plus a V-way softmax; a rollout repeats the step
    per predicted future miss (§5.2's "length").
    """
    e, h, v = config.embed_dim, config.hidden_dim, config.vocab_size
    macs_per_step = 4 * h * (e + h) + h * v
    transcendental = 5 * h + v  # gates + softmax exp
    per_step = OpCount(
        fp_ops=0 if quantized else macs_per_step,
        int_ops=macs_per_step if quantized else 0,
        transcendental_ops=transcendental,
        param_bytes=config.parameter_count * (1 if quantized else 4),
    )
    return per_step.scaled(future_steps)


def lstm_training_ops(config: LSTMConfig = LSTMConfig(),
                      batch_size: int = 1) -> OpCount:
    """Ops for one training *batch* (forward + BPTT backward + update).

    Backward costs ~2.5x forward (gate/state gradient chains); the
    parameter update adds one op per parameter regardless of batch size.
    """
    fwd = lstm_inference_ops(config)
    per_example = fwd.scaled(1.0 + 2.5)
    update = OpCount(fp_ops=config.parameter_count)
    total = per_example.scaled(batch_size) + update
    return replace(total, param_bytes=config.parameter_count * 4)


# ----------------------------------------------------------------------
# Hebbian op counts
# ----------------------------------------------------------------------
def hebbian_parameter_count(config: HebbianConfig = HebbianConfig()) -> int:
    """Expected connected-weight count across the three sparse projections."""
    v, n = config.vocab_size, config.hidden_dim
    in_rows = (config.signature_dim if config.input_mode == "signature" else v)
    return int(round(in_rows * n * config.connectivity_in
                     + n * n * config.connectivity_rec
                     + n * v * config.connectivity_out))


def hebbian_inference_ops(config: HebbianConfig = HebbianConfig(),
                          future_steps: int = 1) -> OpCount:
    """Ops for one Hebbian prediction (integer adds + k-WTA compares).

    Only *active* units do work: the single active input bit fans out to
    its connected hidden units; the k active hidden units fan out through
    the recurrent and readout projections; k-WTA is a linear partial
    selection over the hidden layer.
    """
    v, n, k = config.vocab_size, config.hidden_dim, config.k_winners
    active_inputs = (config.signature_k if config.input_mode == "signature"
                     else 1)
    fan_in = int(active_inputs * n * config.connectivity_in)  # input drive
    fan_rec = int(k * n * config.connectivity_rec)    # recurrent context
    kwta = 2 * n                                      # partial-select compares
    fan_out = int(k * v * config.connectivity_out)    # readout accumulate
    argmax = v
    per_step = OpCount(
        int_ops=fan_in + fan_rec + kwta + fan_out + argmax + n,
        transcendental_ops=v,  # softmax for the confidence estimate
        param_bytes=hebbian_parameter_count(config),  # 1-byte weights
    )
    return per_step.scaled(future_steps)


def hebbian_training_ops(config: HebbianConfig = HebbianConfig(),
                         batch_size: int = 1) -> OpCount:
    """Ops for one Eq. 1 update (+ the forward pass it rides on)."""
    n, k = config.hidden_dim, config.k_winners
    column = int(n * config.connectivity_out)  # +-1 over the target column
    clip = column
    punish = k
    update = OpCount(int_ops=(column + clip + punish + n))
    per_example = hebbian_inference_ops(config) + update
    return per_example.scaled(batch_size)


# ----------------------------------------------------------------------
# Latency model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LatencyModel:
    """Per-op latencies calibrated to the paper's i7-8700 anchors.

    Calibration (done once, against the LSTM config of Table 2):
    - 164k FP MACs/inference * fp_op_ns + 928 transcendentals + dispatch
      ~= >150 us  (paper Figure 2, FP32 inference)
    - same MACs as int ops ~= >60 us  (paper, INT8 inference)
    - training pass (fwd + 2.5x bwd + update, poorer locality) ~= >1 ms.

    Attributes:
        fp_op_ns: ns per floating-point op (unoptimized scalar-ish code).
        int_op_ns: ns per integer op.
        transcendental_ns: ns per sigmoid/tanh/exp.
        dispatch_overhead_us: fixed per-invocation overhead.
        training_locality_factor: training passes touch parameters three
            times with poor locality; ops are slowed by this factor.
        lstm_thread2_speedup: speedup from a second thread (paper: LSTMs
            parallelize poorly, so close to 1).
        hebbian_thread2_speedup: the sparse network's fan-outs are
            independent, so it scales better.
    """

    fp_op_ns: float = 0.88
    int_op_ns: float = 0.33
    transcendental_ns: float = 12.0
    dispatch_overhead_us: float = 5.0
    training_locality_factor: float = 1.6
    lstm_thread2_speedup: float = 1.15
    hebbian_thread2_speedup: float = 1.7

    def inference_us(self, ops: OpCount, threads: int = 1,
                     family: str = "lstm") -> float:
        compute_ns = (ops.fp_ops * self.fp_op_ns
                      + ops.int_ops * self.int_op_ns
                      + ops.transcendental_ops * self.transcendental_ns)
        compute_us = compute_ns / 1000.0
        return self.dispatch_overhead_us + compute_us / self._speedup(threads, family)

    def training_us(self, ops: OpCount, threads: int = 1,
                    family: str = "lstm", batch_size: int = 1) -> float:
        """Per-*batch* training latency; divide by batch for per-example."""
        compute_ns = (ops.fp_ops * self.fp_op_ns
                      + ops.int_ops * self.int_op_ns
                      + ops.transcendental_ops * self.transcendental_ns)
        compute_us = compute_ns / 1000.0 * self.training_locality_factor
        # Larger batches amortize dispatch and improve kernel efficiency.
        efficiency = 0.55 + 0.45 / (batch_size ** 0.5)
        compute_us *= efficiency
        return self.dispatch_overhead_us + compute_us / self._speedup(threads, family)

    def _speedup(self, threads: int, family: str) -> float:
        if threads <= 1:
            return 1.0
        if threads != 2:
            raise ValueError("the model is calibrated for 1 or 2 threads")
        if family == "lstm":
            return self.lstm_thread2_speedup
        if family == "hebbian":
            return self.hebbian_thread2_speedup
        raise ValueError(f"unknown model family {family!r}")


DEFAULT_LATENCY_MODEL = LatencyModel()

#: The paper's published anchors (microseconds), used by tests and
#: EXPERIMENTS.md to check the calibrated model stays faithful.
PAPER_ANCHORS_US = {
    "lstm_inference_fp32": 150.0,     # "&gt;150 us per inference"
    "lstm_inference_int8": 60.0,      # "still takes &gt;60 us"
    "lstm_training_per_example": 1000.0,  # "&gt;1 ms per example"
    "target_low": 1.0,                # "around 1-10 us" deployment target
    "target_high": 10.0,
}
