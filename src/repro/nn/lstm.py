"""A from-scratch LSTM prefetch model (the §2.1/§2.2 baseline).

Architecture (matching the compressed deployment the paper measures):
class-id input -> embedding -> single LSTM layer -> linear -> softmax over
the class vocabulary.  Training is truncated back-propagation-through-time
over a sliding window of recent transitions; gradients are hand-derived
and numerically verified in ``tests/nn/test_lstm_grads.py``.

The default configuration (vocab 128, embedding 64, hidden 160) has
~173k parameters — the paper's Table 2 lists the LSTM at 170k.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from .base import evaluate_sequence_probs
from .layers import SGD, glorot, softmax


@dataclass(frozen=True)
class LSTMConfig:
    """LSTM prefetcher hyperparameters.

    Attributes:
        vocab_size: Number of miss classes (input and output).
        embed_dim: Embedding width.
        hidden_dim: LSTM state width.
        window: Truncated-BPTT window (transitions per online update).
        lr: SGD learning rate.
        clip_norm: Gradient clipping norm.
        seed: Weight-init seed.
    """

    vocab_size: int = 128
    embed_dim: int = 64
    hidden_dim: int = 160
    window: int = 8
    lr: float = 0.5
    clip_norm: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if min(self.vocab_size, self.embed_dim, self.hidden_dim, self.window) <= 0:
            raise ValueError("all dimensions must be positive")

    @property
    def parameter_count(self) -> int:
        v, e, h = self.vocab_size, self.embed_dim, self.hidden_dim
        return v * e + (e + h) * 4 * h + 4 * h + h * v + v


class LSTM:
    """The raw batched LSTM: forward, BPTT backward, SGD update."""

    def __init__(self, config: LSTMConfig = LSTMConfig()) -> None:
        self.config = config
        rng = np.random.default_rng(config.seed)
        v, e, h = config.vocab_size, config.embed_dim, config.hidden_dim
        self.params: dict[str, np.ndarray] = {
            "E": rng.normal(0.0, 0.1, size=(v, e)),
            "W": glorot(rng, e + h, 4 * h),
            "b": np.zeros(4 * h),
            "Wy": glorot(rng, h, v),
            "by": np.zeros(v),
        }
        # Forget-gate bias starts positive so early state persists.
        self.params["b"][h:2 * h] = 1.0
        self.optimizer = SGD(lr=config.lr, clip_norm=config.clip_norm)

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, inputs: np.ndarray, h0: np.ndarray | None = None,
                c0: np.ndarray | None = None) -> tuple[np.ndarray, dict]:
        """Run a batch of sequences.

        Args:
            inputs: int array (B, T) of class ids.
            h0, c0: optional initial states (B, H).

        Returns:
            (probs, cache): probs is (B, T, V); cache feeds ``backward``.
        """
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.int64))
        B, T = inputs.shape
        h_dim = self.config.hidden_dim
        p = self.params
        h = np.zeros((B, h_dim)) if h0 is None else h0.copy()
        c = np.zeros((B, h_dim)) if c0 is None else c0.copy()

        xs, zs, gates, cs, hs, tanhcs = [], [], [], [c.copy()], [h.copy()], []
        logits = np.empty((B, T, self.config.vocab_size))
        for t in range(T):
            x = p["E"][inputs[:, t]]                     # (B, E)
            z = np.concatenate([x, h], axis=1)           # (B, E+H)
            a = z @ p["W"] + p["b"]                      # (B, 4H)
            i_g = _sigmoid(a[:, 0 * h_dim:1 * h_dim])
            f_g = _sigmoid(a[:, 1 * h_dim:2 * h_dim])
            g_g = np.tanh(a[:, 2 * h_dim:3 * h_dim])
            o_g = _sigmoid(a[:, 3 * h_dim:4 * h_dim])
            c = f_g * c + i_g * g_g
            tanh_c = np.tanh(c)
            h = o_g * tanh_c
            logits[:, t] = h @ p["Wy"] + p["by"]

            xs.append(x)
            zs.append(z)
            gates.append((i_g, f_g, g_g, o_g))
            cs.append(c.copy())
            hs.append(h.copy())
            tanhcs.append(tanh_c)

        probs = softmax(logits, axis=-1)
        cache = {
            "inputs": inputs, "xs": xs, "zs": zs, "gates": gates,
            "cs": cs, "hs": hs, "tanhcs": tanhcs, "probs": probs,
        }
        return probs, cache

    # ------------------------------------------------------------------
    # Backward (full BPTT over the given window)
    # ------------------------------------------------------------------
    def backward(self, cache: dict, targets: np.ndarray,
                 mask: np.ndarray | None = None) -> dict[str, np.ndarray]:
        """Gradients of mean masked cross-entropy w.r.t. all parameters.

        Args:
            cache: From :meth:`forward`.
            targets: int array (B, T) of next-class labels.
            mask: optional float array (B, T); 0 excludes a step.
        """
        p = self.params
        inputs = cache["inputs"]
        probs = cache["probs"]
        B, T = inputs.shape
        h_dim = self.config.hidden_dim
        targets = np.atleast_2d(np.asarray(targets, dtype=np.int64))
        if mask is None:
            mask = np.ones((B, T))
        denom = max(float(mask.sum()), 1.0)

        grads = {k: np.zeros_like(v) for k, v in p.items()}
        dh_next = np.zeros((B, h_dim))
        dc_next = np.zeros((B, h_dim))

        for t in reversed(range(T)):
            dlogits = probs[:, t].copy()
            dlogits[np.arange(B), targets[:, t]] -= 1.0
            dlogits *= (mask[:, t] / denom)[:, None]

            h_t = cache["hs"][t + 1]
            grads["Wy"] += h_t.T @ dlogits
            grads["by"] += dlogits.sum(axis=0)

            dh = dlogits @ p["Wy"].T + dh_next
            i_g, f_g, g_g, o_g = cache["gates"][t]
            tanh_c = cache["tanhcs"][t]
            c_prev = cache["cs"][t]

            do = dh * tanh_c
            dc = dh * o_g * (1.0 - tanh_c ** 2) + dc_next
            di = dc * g_g
            dg = dc * i_g
            df = dc * c_prev
            dc_next = dc * f_g

            da = np.concatenate([
                di * i_g * (1.0 - i_g),
                df * f_g * (1.0 - f_g),
                dg * (1.0 - g_g ** 2),
                do * o_g * (1.0 - o_g),
            ], axis=1)

            grads["W"] += cache["zs"][t].T @ da
            grads["b"] += da.sum(axis=0)
            dz = da @ p["W"].T
            dx = dz[:, :self.config.embed_dim]
            dh_next = dz[:, self.config.embed_dim:]
            np.add.at(grads["E"], inputs[:, t], dx)

        return grads

    def train_batch(self, inputs: np.ndarray, targets: np.ndarray,
                    lr_scale: float = 1.0, mask: np.ndarray | None = None) -> float:
        """One SGD step on a batch of sequences; returns the mean loss."""
        probs, cache = self.forward(inputs)
        targets = np.atleast_2d(np.asarray(targets, dtype=np.int64))
        B, T = targets.shape
        if mask is None:
            mask = np.ones((B, T))
        picked = probs[np.arange(B)[:, None], np.arange(T)[None, :], targets]
        loss = float(-(np.log(np.clip(picked, 1e-12, None)) * mask).sum()
                     / max(float(mask.sum()), 1.0))
        grads = self.backward(cache, targets, mask)
        self.optimizer.apply(self.params, grads, lr_scale=lr_scale)
        return loss

    def step_state(self, input_class: int, h: np.ndarray, c: np.ndarray
                   ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Advance a (1, H) state by one input; returns (probs, h, c)."""
        probs, cache = self.forward(np.array([[input_class]]), h0=h, c0=c)
        return probs[0, 0], cache["hs"][-1], cache["cs"][-1]


class OnlineLSTM:
    """Online wrapper: sliding-window truncated BPTT + streaming state.

    This is the deployment of Figure 1: each observed miss class first
    trains the model on the transition window ending at it, then advances
    the streaming recurrent state used for prediction.
    """

    def __init__(self, config: LSTMConfig = LSTMConfig()) -> None:
        self.config = config
        self.net = LSTM(config)
        self.vocab_size = config.vocab_size
        self._window: deque[tuple[int, int]] = deque(maxlen=config.window)
        self._prev_class: int | None = None
        self._h = np.zeros((1, config.hidden_dim))
        self._c = np.zeros((1, config.hidden_dim))
        self._last_probs: np.ndarray | None = None
        self.train_steps = 0

    # -- SequenceModel interface ---------------------------------------
    def step(self, input_class: int, train: bool = True,
             lr_scale: float = 1.0) -> np.ndarray:
        self._check_class(input_class)
        if train and self._prev_class is not None:
            self._window.append((self._prev_class, input_class))
            inputs = np.array([[x for x, _ in self._window]])
            targets = np.array([[y for _, y in self._window]])
            self.net.train_batch(inputs, targets, lr_scale=lr_scale)
            self.train_steps += 1
        probs, self._h, self._c = self.net.step_state(input_class, self._h, self._c)
        self._prev_class = input_class
        self._last_probs = probs
        return probs

    def train_pair(self, input_class: int, target_class: int,
                   lr_scale: float = 1.0) -> float:
        self._check_class(input_class)
        self._check_class(target_class)
        probs, _ = self.net.forward(np.array([[input_class]]))
        confidence = float(probs[0, 0, target_class])
        self.net.train_batch(np.array([[input_class]]), np.array([[target_class]]),
                             lr_scale=lr_scale)
        return confidence

    def train_pairs(self, pairs: list[tuple[int, int]],
                    lr_scale: float = 1.0) -> None:
        """One true batched SGD step over accumulated transitions (§5.1)."""
        if not pairs:
            return
        for input_class, target_class in pairs:
            self._check_class(input_class)
            self._check_class(target_class)
        inputs = np.array([[a] for a, _ in pairs])
        targets = np.array([[b] for _, b in pairs])
        self.net.train_batch(inputs, targets, lr_scale=lr_scale)

    def predict_rollout(self, width: int = 1, length: int = 1
                        ) -> list[list[tuple[int, float]]]:
        if self._last_probs is None:
            return []
        out: list[list[tuple[int, float]]] = []
        probs = self._last_probs
        h, c = self._h, self._c
        for _ in range(length):
            top = np.argsort(probs)[::-1][:width]
            out.append([(int(k), float(probs[k])) for k in top])
            probs, h, c = self.net.step_state(int(top[0]), h, c)
        return out

    def reset_state(self) -> None:
        self._h = np.zeros((1, self.config.hidden_dim))
        self._c = np.zeros((1, self.config.hidden_dim))
        self._prev_class = None
        self._last_probs = None
        self._window.clear()

    def clone(self) -> "OnlineLSTM":
        twin = OnlineLSTM(self.config)
        twin.net.params = {k: v.copy() for k, v in self.net.params.items()}
        twin._h, twin._c = self._h.copy(), self._c.copy()
        twin._prev_class = self._prev_class
        twin._window = deque(self._window, maxlen=self.config.window)
        if self._last_probs is not None:
            twin._last_probs = self._last_probs.copy()
        twin.train_steps = self.train_steps
        return twin

    def evaluate_sequence(self, classes: list[int]) -> float:
        probs = evaluate_sequence_probs(self, classes)
        return float(probs.mean()) if probs.size else 0.0

    def _check_class(self, class_id: int) -> None:
        if not 0 <= class_id < self.vocab_size:
            raise ValueError(f"class {class_id} outside vocab [0, {self.vocab_size})")


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
