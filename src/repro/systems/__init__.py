"""Target-system simulators for the §4 deployments (Figure 6)."""

from .disaggregated import DisaggregatedSystem, DisaggResult, NodeResult
from .latency import DISAGGREGATED_FABRIC, UVM_FABRIC, FabricLatency
from .uvm import UVMResult, UVMSystem

__all__ = [
    "DisaggregatedSystem",
    "DisaggResult",
    "NodeResult",
    "DISAGGREGATED_FABRIC",
    "UVM_FABRIC",
    "FabricLatency",
    "UVMResult",
    "UVMSystem",
]
