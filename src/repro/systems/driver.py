"""Stream-aware prefetcher composition for centralized deployments (§4).

A centralized prefetcher (the UVM driver, or a switch-resident design)
observes *interleaved* access streams.  The paper notes it "may require
more processing to ensure that it can isolate the individual access
patterns in the combined access streams."  Two compositions make that
trade-off measurable:

- :class:`SharedStreamPrefetcher` — one model over the raw interleaved
  miss stream (no isolation; cross-stream deltas pollute the encoding);
- :class:`PerStreamPrefetcher` — the isolation pass: demultiplex by
  stream id into per-stream model instances (more state, clean patterns).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..memsim.events import MissEvent
from ..memsim.prefetcher import Prefetcher

PrefetcherFactory = Callable[[], Prefetcher]


@dataclass
class SharedStreamPrefetcher:
    """One underlying prefetcher fed the interleaved stream as-is."""

    inner: Prefetcher
    name: str = field(default="", repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"shared({self.inner.name})"

    def on_miss(self, event: MissEvent) -> list[int]:
        return self.inner.on_miss(event)

    def on_miss_fast(self, index: int, address: int, page: int,
                     stream_id: int, timestamp: int) -> list[int]:
        inner_fast = getattr(self.inner, "on_miss_fast", None)
        if inner_fast is not None:
            return inner_fast(index, address, page, stream_id, timestamp)
        return self.inner.on_miss(MissEvent(
            index=index, address=address, page=page,
            stream_id=stream_id, timestamp=timestamp))


@dataclass
class PerStreamPrefetcher:
    """Demultiplex misses by stream id into per-stream prefetchers.

    Sub-prefetchers are created lazily from ``factory`` the first time a
    stream faults, bounded by ``max_streams`` (further streams share the
    overflow instance — a resource-cap knob for constrained deployments).
    """

    factory: PrefetcherFactory
    max_streams: int = 64
    name: str = "per-stream"
    _per_stream: dict[int, Prefetcher] = field(default_factory=dict, repr=False)
    _overflow: Prefetcher | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.max_streams < 1:
            raise ValueError("max_streams must be >= 1")

    def on_miss(self, event: MissEvent) -> list[int]:
        return self._route(event.stream_id).on_miss(event)

    def on_miss_fast(self, index: int, address: int, page: int,
                     stream_id: int, timestamp: int) -> list[int]:
        inner = self._route(stream_id)
        inner_fast = getattr(inner, "on_miss_fast", None)
        if inner_fast is not None:
            return inner_fast(index, address, page, stream_id, timestamp)
        return inner.on_miss(MissEvent(
            index=index, address=address, page=page,
            stream_id=stream_id, timestamp=timestamp))

    def _route(self, stream_id: int) -> Prefetcher:
        prefetcher = self._per_stream.get(stream_id)
        if prefetcher is not None:
            return prefetcher
        if len(self._per_stream) < self.max_streams:
            prefetcher = self.factory()
            self._per_stream[stream_id] = prefetcher
            return prefetcher
        if self._overflow is None:
            self._overflow = self.factory()
        return self._overflow

    @property
    def n_streams(self) -> int:
        return len(self._per_stream)
