"""Disaggregated-memory system simulator (§4, Figure 6 left).

The paper's characterization: compute nodes fault on one page at a time,
so the prefetcher should be *latency*-optimized; scarce switch resources
force a *decentralized* design with one prefetcher per node, which also
means each prefetcher sees a single un-interleaved access stream and can
use a smaller network.

The simulator runs one trace per compute node against that node's local
memory, with misses fetched from the remote pool at fabric latency.  Two
prefetcher placements are supported so the §4 placement argument can be
measured (A7):

- ``decentralized``: an independent prefetcher per node (the paper's
  choice for this system);
- ``centralized``: one shared prefetcher observing all nodes' misses
  interleaved (what a switch-resident design would see).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..memsim.events import MissEvent
from ..memsim.pagecache import MISS, PageCache
from ..memsim.prefetch_queue import PrefetchQueue
from ..memsim.prefetcher import Prefetcher
from ..patterns.trace import Trace
from .latency import DISAGGREGATED_FABRIC, FabricLatency

PrefetcherFactory = Callable[[], Prefetcher]


@dataclass
class NodeResult:
    """Per-node outcome."""

    node_id: int
    trace_name: str
    accesses: int
    demand_misses: int
    prefetch_hits: int
    total_stall_ns: int

    @property
    def miss_rate(self) -> float:
        return self.demand_misses / self.accesses if self.accesses else 0.0

    @property
    def mean_access_ns(self) -> float:
        return self.total_stall_ns / self.accesses if self.accesses else 0.0


@dataclass
class DisaggResult:
    """System-level outcome of one disaggregated run."""

    placement: str
    nodes: list[NodeResult]
    fabric: FabricLatency

    @property
    def total_misses(self) -> int:
        return sum(n.demand_misses for n in self.nodes)

    @property
    def mean_access_ns(self) -> float:
        accesses = sum(n.accesses for n in self.nodes)
        stall = sum(n.total_stall_ns for n in self.nodes)
        return stall / accesses if accesses else 0.0

    def speedup_over(self, baseline: "DisaggResult") -> float:
        """Mean-access-latency improvement vs a baseline run."""
        if self.mean_access_ns == 0:
            return 1.0
        return baseline.mean_access_ns / self.mean_access_ns


@dataclass
class DisaggregatedSystem:
    """N compute nodes + remote memory pool + pluggable prefetcher placement.

    Attributes:
        node_traces: One access trace per compute node.
        memory_fraction: Each node's local memory as a fraction of its
            trace footprint.
        fabric: Latency constants.
        page_size: Bytes per page.
        prefetch_delay_accesses: Timeliness delay; None derives it from the
            fabric's inference+fetch time and each node's mean access gap.
    """

    node_traces: list[Trace]
    memory_fraction: float = 0.5
    fabric: FabricLatency = DISAGGREGATED_FABRIC
    page_size: int = 4096
    prefetch_delay_accesses: int | None = None
    _page_shift: int = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.node_traces:
            raise ValueError("need at least one node trace")
        if not 0 < self.memory_fraction <= 1:
            raise ValueError("memory_fraction must be in (0, 1]")
        self._page_shift = self.page_size.bit_length() - 1

    # ------------------------------------------------------------------
    def run_decentralized(self, prefetcher_factory: PrefetcherFactory
                          ) -> DisaggResult:
        """One independent prefetcher per node (the paper's §4 design)."""
        nodes = [
            self._run_node(node_id, trace, prefetcher_factory())
            for node_id, trace in enumerate(self.node_traces)
        ]
        return DisaggResult(placement="decentralized", nodes=nodes,
                            fabric=self.fabric)

    def run_centralized(self, prefetcher_factory: PrefetcherFactory
                        ) -> DisaggResult:
        """A single shared prefetcher observing all nodes' misses.

        Node streams advance round-robin; the shared prefetcher receives
        the interleaved miss stream (stream_id = node), and its predictions
        are routed back to the faulting node's local memory.
        """
        shared = prefetcher_factory()
        caches = [PageCache(self._capacity(t)) for t in self.node_traces]
        queues = [PrefetchQueue(self._delay(t)) for t in self.node_traces]
        pages = [t.pages(self.page_size) for t in self.node_traces]
        cursors = [0] * len(self.node_traces)
        stalls = [0] * len(self.node_traces)

        remaining = sum(len(t) for t in self.node_traces)
        while remaining:
            for node_id, trace in enumerate(self.node_traces):
                i = cursors[node_id]
                if i >= len(trace):
                    continue
                cursors[node_id] += 1
                remaining -= 1
                cache, queue = caches[node_id], queues[node_id]
                for landed in queue.landed_unique(i):
                    cache.insert_prefetch(landed)
                page = int(pages[node_id][i])
                outcome = cache.access(page)
                if outcome == MISS:
                    cache.fill(page)
                    stalls[node_id] += self.fabric.remote_fetch_ns
                    event = MissEvent(index=i, address=int(trace.addresses[i]),
                                      page=page, stream_id=node_id,
                                      timestamp=int(trace.timestamps[i]))
                    for predicted in shared.on_miss(event):
                        if predicted != page:
                            queue.issue(int(predicted), i)
                else:
                    stalls[node_id] += self.fabric.local_access_ns

        nodes = [
            NodeResult(node_id=n, trace_name=t.name, accesses=len(t),
                       demand_misses=caches[n].stats.demand_misses,
                       prefetch_hits=caches[n].stats.prefetch_hits,
                       total_stall_ns=stalls[n])
            for n, t in enumerate(self.node_traces)
        ]
        return DisaggResult(placement="centralized", nodes=nodes,
                            fabric=self.fabric)

    def run_no_prefetch(self) -> DisaggResult:
        """Baseline: no prefetching on any node."""
        from ..memsim.prefetcher import NullPrefetcher

        nodes = [
            self._run_node(node_id, trace, NullPrefetcher())
            for node_id, trace in enumerate(self.node_traces)
        ]
        return DisaggResult(placement="none", nodes=nodes, fabric=self.fabric)

    # ------------------------------------------------------------------
    def _run_node(self, node_id: int, trace: Trace,
                  prefetcher: Prefetcher) -> NodeResult:
        cache = PageCache(self._capacity(trace))
        queue = PrefetchQueue(self._delay(trace))
        pages = trace.pages(self.page_size)
        stall = 0
        for i in range(len(trace)):
            for landed in queue.landed_unique(i):
                cache.insert_prefetch(landed)
            page = int(pages[i])
            outcome = cache.access(page)
            if outcome == MISS:
                cache.fill(page)
                stall += self.fabric.remote_fetch_ns
                event = MissEvent(index=i, address=int(trace.addresses[i]),
                                  page=page, stream_id=node_id,
                                  timestamp=int(trace.timestamps[i]))
                for predicted in prefetcher.on_miss(event):
                    if predicted != page:
                        queue.issue(int(predicted), i)
            else:
                stall += self.fabric.local_access_ns
        return NodeResult(node_id=node_id, trace_name=trace.name,
                          accesses=len(trace),
                          demand_misses=cache.stats.demand_misses,
                          prefetch_hits=cache.stats.prefetch_hits,
                          total_stall_ns=stall)

    def _capacity(self, trace: Trace) -> int:
        return max(1, int(trace.footprint_pages(self.page_size)
                          * self.memory_fraction))

    def _delay(self, trace: Trace) -> int:
        if self.prefetch_delay_accesses is not None:
            return self.prefetch_delay_accesses
        if len(trace) < 2:
            return 0
        gap = (int(trace.timestamps[-1]) - int(trace.timestamps[0])) / (len(trace) - 1)
        return self.fabric.delay_accesses(gap)
