"""CPU-GPU unified-virtual-memory simulator (§4, Figure 6 right).

The paper's characterization of UVM: SIMT execution produces *many
concurrent faults*; lockstep execution means one fault can stall many
threads, so the prefetcher should be *throughput*-optimized; and because
software visibility lives only in the CPU-side driver, prefetching is
necessarily *centralized* over the interleaved access streams of all SMs.

Model: ``n_streams`` access streams advance in lockstep rounds against a
shared device memory.  All faults raised in a round are serviced as one
batch — the batch pays one fault-handling latency plus a per-page transfer
cost, matching the far-fault batching of real UVM drivers.  A single
driver-resident prefetcher observes every fault (stream-tagged) and its
predictions are installed into device memory after the timeliness delay.

Throughput = total accesses / total simulated time; prefetch *width*
(§5.2) matters here exactly as the paper argues: wider prediction removes
more faults per batch even at lower per-prediction accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..memsim.events import MissEvent
from ..memsim.pagecache import MISS, PageCache
from ..memsim.prefetch_queue import PrefetchQueue
from ..memsim.prefetcher import Prefetcher
from ..patterns.trace import Trace
from .latency import UVM_FABRIC, FabricLatency

PrefetcherFactory = Callable[[], Prefetcher]


@dataclass
class UVMResult:
    """Outcome of one UVM run."""

    accesses: int
    rounds: int
    fault_batches: int
    total_faults: int
    prefetch_hits: int
    total_time_ns: int
    fabric: FabricLatency

    @property
    def throughput_accesses_per_us(self) -> float:
        if self.total_time_ns == 0:
            return 0.0
        return 1000.0 * self.accesses / self.total_time_ns

    @property
    def fault_rate(self) -> float:
        return self.total_faults / self.accesses if self.accesses else 0.0

    def speedup_over(self, baseline: "UVMResult") -> float:
        if self.total_time_ns == 0:
            return 1.0
        return baseline.total_time_ns / self.total_time_ns


@dataclass
class UVMSystem:
    """Lockstep multi-stream GPU over a shared device memory.

    Attributes:
        stream_traces: One access trace per SIMT stream (SM/warp group).
        memory_fraction: Device memory as a fraction of the combined
            footprint.
        fabric: Latency constants (fault handling dominates).
        page_size: Bytes per page.
        per_page_transfer_ns: Additional cost per distinct page migrated
            in a fault batch.
        prefetch_delay_rounds: Rounds before an issued prefetch lands.
    """

    stream_traces: list[Trace]
    memory_fraction: float = 0.5
    fabric: FabricLatency = UVM_FABRIC
    page_size: int = 4096
    per_page_transfer_ns: int = 2_000
    prefetch_delay_rounds: int = 2
    _page_shift: int = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.stream_traces:
            raise ValueError("need at least one stream trace")
        if not 0 < self.memory_fraction <= 1:
            raise ValueError("memory_fraction must be in (0, 1]")
        if self.prefetch_delay_rounds < 0:
            raise ValueError("prefetch_delay_rounds must be >= 0")
        self._page_shift = self.page_size.bit_length() - 1

    def run(self, prefetcher: Prefetcher | None) -> UVMResult:
        """Simulate to completion with the given driver-side prefetcher."""
        pages = [t.pages(self.page_size) for t in self.stream_traces]
        footprint = len({int(p) for ps in pages for p in ps})
        capacity = max(1, int(footprint * self.memory_fraction))
        device = PageCache(capacity_pages=capacity)
        queue = PrefetchQueue(delay_accesses=self.prefetch_delay_rounds)

        cursors = [0] * len(self.stream_traces)
        total_time = 0
        rounds = 0
        fault_batches = 0
        accesses_done = 0
        total_accesses = sum(len(t) for t in self.stream_traces)

        while accesses_done < total_accesses:
            for landed in queue.landed_unique(rounds):
                device.insert_prefetch(landed)

            # Lockstep: one access per still-running stream this round.
            faults: list[MissEvent] = []
            for sid, trace in enumerate(self.stream_traces):
                i = cursors[sid]
                if i >= len(trace):
                    continue
                cursors[sid] += 1
                accesses_done += 1
                page = int(pages[sid][i])
                outcome = device.access(page)
                if outcome == MISS:
                    device.fill(page)
                    faults.append(MissEvent(
                        index=i, address=int(trace.addresses[i]),
                        page=page, stream_id=sid,
                        timestamp=int(trace.timestamps[i])))

            if faults:
                fault_batches += 1
                distinct = {f.page for f in faults}
                total_time += (self.fabric.remote_fetch_ns
                               + len(distinct) * self.per_page_transfer_ns)
                if prefetcher is not None:
                    for event in faults:
                        for predicted in prefetcher.on_miss(event):
                            if predicted != event.page:
                                queue.issue(int(predicted), rounds)
            else:
                total_time += self.fabric.local_access_ns
            rounds += 1

        return UVMResult(
            accesses=total_accesses,
            rounds=rounds,
            fault_batches=fault_batches,
            total_faults=device.stats.demand_misses,
            prefetch_hits=device.stats.prefetch_hits,
            total_time_ns=total_time,
            fabric=self.fabric,
        )

    def run_no_prefetch(self) -> UVMResult:
        return self.run(None)
