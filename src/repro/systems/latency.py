"""Fabric latency parameters for the §4 target systems.

Defaults follow the magnitudes the paper cites: microsecond-scale
cross-node latencies in disaggregated racks (MIND [27]) and tens of
microseconds for GPU UVM fault handling (Allen & Ge [7]).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FabricLatency:
    """Latency constants for one deployment fabric (nanoseconds).

    Attributes:
        local_access_ns: Hit in local/fast memory.
        remote_fetch_ns: Demand fetch over the fabric (what a miss costs).
        prefetch_issue_ns: CPU-side cost to enqueue one prefetch.
        inference_ns: Model inference latency on the prefetch path; the
            timeliness delay is derived from this (see ``delay_accesses``).
    """

    local_access_ns: int = 100
    remote_fetch_ns: int = 3_000
    prefetch_issue_ns: int = 200
    inference_ns: int = 3_000

    def __post_init__(self) -> None:
        if min(self.local_access_ns, self.remote_fetch_ns,
               self.prefetch_issue_ns, self.inference_ns) < 0:
            raise ValueError("latencies must be non-negative")

    def delay_accesses(self, mean_gap_ns: float,
                       inference_ns: int | None = None) -> int:
        """Accesses elapsing before a prefetch lands (timeliness, §5.2).

        ``mean_gap_ns`` should be the *stall-inclusive* mean time per
        access (e.g., a baseline run's mean access latency), since that is
        the rate at which the application actually advances.
        ``inference_ns`` overrides the fabric default — pass the model's
        modeled latency so timeliness reflects the prefetcher itself
        (the Hebbian network's few-microsecond inference vs the LSTM's
        >150 us is exactly the paper's deployability argument).
        """
        if mean_gap_ns <= 0:
            return 0
        total = (self.inference_ns if inference_ns is None else inference_ns
                 ) + self.remote_fetch_ns
        return max(0, int(total // mean_gap_ns))


#: Disaggregated rack (MIND-like): ~3 us one-sided remote access.
DISAGGREGATED_FABRIC = FabricLatency(
    local_access_ns=100,
    remote_fetch_ns=3_000,
    prefetch_issue_ns=200,
    inference_ns=3_000,
)

#: CPU-GPU UVM: a far fault costs ~20-50 us of driver + PCIe work [7].
UVM_FABRIC = FabricLatency(
    local_access_ns=40,
    remote_fetch_ns=25_000,
    prefetch_issue_ns=500,
    inference_ns=5_000,
)
