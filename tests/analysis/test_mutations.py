"""Seeded-mutation proofs: each RL100-series rule catches the regression
it was built for, on the *real* source tree.

A pristine copy of ``src/repro`` goes to a temp directory, one targeted
regression is injected by text substitution (the anchor must exist —
a failed substitution fails the test rather than silently proving
nothing), and the linter must flag exactly the mutated construct.  The
pristine copy doubles as the negative control.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.analysis import lint_paths

SRC = Path(__file__).parents[2] / "src" / "repro"

PROJECT_CODES = frozenset({"RL101", "RL102", "RL103"})


@pytest.fixture()
def tree(tmp_path):
    target = tmp_path / "repro"
    shutil.copytree(SRC, target,
                    ignore=shutil.ignore_patterns("__pycache__"))
    return target


def mutate(tree: Path, relpath: str, anchor: str, replacement: str) -> None:
    path = tree / relpath
    source = path.read_text()
    assert anchor in source, f"mutation anchor missing in {relpath}: {anchor}"
    path.write_text(source.replace(anchor, replacement, 1))


def project_findings(tree: Path, code: str):
    return [f for f in lint_paths([tree], select=frozenset({code}))]


def test_pristine_tree_is_clean(tree):
    findings = lint_paths([tree], select=PROJECT_CODES)
    assert findings == [], "\n".join(f.format() for f in findings)


def test_env_read_in_spec_key_triggers_rl101(tree):
    """The canonical cache-poisoning bug: salting the key hash with an
    environment variable makes cache identity machine-dependent."""
    mutate(tree, "harness/runner.py",
           'canonical = json.dumps(\n'
           '        {"cache_version": CACHE_VERSION, '
           '"spec": canonicalize_spec(spec)},',
           'canonical = json.dumps(\n'
           '        {"cache_version": os.environ.get("CACHE_VERSION", '
           'str(CACHE_VERSION)), "spec": canonicalize_spec(spec)},')
    findings = project_findings(tree, "RL101")
    assert findings, "RL101 did not fire on the env-salted key"
    # The hermetic-body check flags the read inside spec_key itself;
    # downstream flow hits (the poisoned key circulating back through
    # run_grid) may legitimately accompany it.
    assert any("inside cache-key function spec_key" in f.message
               and "os.environ" in f.message for f in findings), \
        "\n".join(f.format() for f in findings)
    assert all(f.path.endswith("harness/runner.py") for f in findings)


def test_volatile_flow_into_key_call_triggers_rl101(tree):
    """Flow variant: the spec itself is decorated with volatile data
    upstream of the ``spec_key`` call site in ``run_grid``."""
    mutate(tree, "harness/runner.py",
           "    specs = list(specs)\n",
           "    specs = [dict(s, host=os.environ.get('HOST', '')) "
           "for s in specs]\n")
    findings = project_findings(tree, "RL101")
    assert findings, "RL101 did not fire on the tainted-spec flow"
    assert any("os.environ" in f.message for f in findings)


def test_signature_drift_in_c_backend_triggers_rl102(tree):
    """A renamed kernel parameter in one backend breaks call-shape
    parity with the numba and numpy bundles."""
    mutate(tree, "nn/backends/c_backend.py",
           "def first_nonresident(self, soc: np.ndarray, cids: np.ndarray,\n"
           "                          start: int, stop: int) -> int:",
           "def first_nonresident(self, soc: np.ndarray, cids: np.ndarray,\n"
           "                          begin: int, stop: int) -> int:")
    findings = project_findings(tree, "RL102")
    assert findings, "RL102 did not fire on the drifted signature"
    assert any("first_nonresident" in f.message for f in findings)
    assert {f.path.rpartition("/")[2] for f in findings} <= \
        {"c_backend.py", "numba_backend.py"}


def test_dropped_factory_registration_triggers_rl102(tree):
    """Renaming a factory out of existence silently degrades the
    backend to the numpy fallback; the registry contract catches it."""
    mutate(tree, "nn/backends/numba_backend.py",
           "def make_sim_kernels(", "def build_sim_kernels(")
    findings = project_findings(tree, "RL102")
    assert any("does not define make_sim_kernels" in f.message
               for f in findings), \
        "\n".join(f.format() for f in findings)


def test_unguarded_module_dict_triggers_rl103(tree):
    """A lowercase module-level mutable container is shared per-process
    state and must be zone-annotated or constant-styled."""
    mutate(tree, "harness/runner.py",
           "CACHE_VERSION = 1",
           "CACHE_VERSION = 1\n_seen_keys: dict[str, str] = {}")
    findings = project_findings(tree, "RL103")
    assert len(findings) == 1, "\n".join(f.format() for f in findings)
    assert "_seen_keys" in findings[0].message


def test_zone_removal_resurfaces_rl103(tree):
    """The ``zone=init`` markers are load-bearing: stripping the one on
    ``set_default_backend`` re-exposes the ambient rebind."""
    mutate(tree, "nn/backends/__init__.py",
           "def set_default_backend(name: str) -> None:"
           "  # repro-lint: zone=init",
           "def set_default_backend(name: str) -> None:")
    findings = project_findings(tree, "RL103")
    assert len(findings) == 1, "\n".join(f.format() for f in findings)
    assert "_default_backend" in findings[0].message
