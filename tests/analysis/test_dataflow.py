"""Unit tests for the whole-program dataflow layer.

Synthetic packages are written to ``tmp_path`` and parsed through
:class:`~repro.analysis.dataflow.project.ProjectContext`, exactly as the
engine builds it — covering module naming, import resolution (relative,
aliased, star), symbol re-export chains, call-graph edges (cycles,
decorators, ``functools.wraps`` wrappers, methods, constructors),
def-use chains, and the taint engine's flow composition.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.analysis.context import FileContext
from repro.analysis.dataflow import ProjectContext, module_name_for
from repro.analysis.dataflow.defuse import build_flow


def build_project(root: Path, files: dict[str, str]) -> ProjectContext:
    contexts = []
    for relpath, source in sorted(files.items()):
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    for relpath in sorted(files):
        path = root / relpath
        contexts.append(FileContext.parse(path, display_path=str(path)))
    return ProjectContext(contexts)


class TestModuleNaming:
    def test_package_chain(self, tmp_path):
        (tmp_path / "pkg" / "sub").mkdir(parents=True)
        (tmp_path / "pkg" / "__init__.py").write_text("")
        (tmp_path / "pkg" / "sub" / "__init__.py").write_text("")
        target = tmp_path / "pkg" / "sub" / "mod.py"
        target.write_text("")
        assert module_name_for(target) == "pkg.sub.mod"

    def test_file_outside_any_package(self, tmp_path):
        target = tmp_path / "standalone.py"
        target.write_text("")
        assert module_name_for(target) == "standalone"

    def test_package_init_names_the_package(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        target = tmp_path / "pkg" / "__init__.py"
        target.write_text("")
        assert module_name_for(target) == "pkg"


class TestImportResolution:
    def test_relative_import_resolves(self, tmp_path):
        project = build_project(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": "VALUE = 1\n",
            "pkg/b.py": "from .a import VALUE\n",
        })
        info = project.modules.get("pkg.b")
        assert info.imports["VALUE"] == "pkg.a.VALUE"

    def test_relative_import_from_package_init(self, tmp_path):
        project = build_project(tmp_path, {
            "pkg/__init__.py": "from .a import VALUE\n",
            "pkg/a.py": "VALUE = 1\n",
        })
        info = project.modules.get("pkg")
        assert info.imports["VALUE"] == "pkg.a.VALUE"

    def test_star_import_resolves_symbols(self, tmp_path):
        project = build_project(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": "def helper() -> int:\n    return 1\n",
            "pkg/b.py": ("from .a import *\n"
                         "\n"
                         "\n"
                         "def caller() -> int:\n"
                         "    return helper()\n"),
        })
        fn = project.callgraph.function("pkg.b.caller")
        assert {s.callee for s in fn.calls} == {"pkg.a.helper"}

    def test_reexport_chain_resolves(self, tmp_path):
        project = build_project(tmp_path, {
            "pkg/__init__.py": "from .impl import helper\n",
            "pkg/impl.py": "def helper() -> int:\n    return 1\n",
            "user.py": ("import pkg\n"
                        "\n"
                        "\n"
                        "def go() -> int:\n"
                        "    return pkg.helper()\n"),
        })
        fn = project.callgraph.function("user.go")
        assert {s.callee for s in fn.calls} == {"pkg.impl.helper"}


class TestCallGraph:
    def test_cycle_is_finite(self, tmp_path):
        project = build_project(tmp_path, {
            "mod.py": ("def even(n: int) -> bool:\n"
                       "    return n == 0 or odd(n - 1)\n"
                       "\n"
                       "\n"
                       "def odd(n: int) -> bool:\n"
                       "    return n != 0 and even(n - 1)\n"),
        })
        reach = project.callgraph.transitive_callees("mod.even")
        assert reach == {"mod.even", "mod.odd"}

    def test_decorated_function_keeps_identity(self, tmp_path):
        project = build_project(tmp_path, {
            "mod.py": ("import functools\n"
                       "\n"
                       "\n"
                       "def logged(fn):\n"
                       "    @functools.wraps(fn)\n"
                       "    def wrapper(*args, **kwargs):\n"
                       "        return fn(*args, **kwargs)\n"
                       "    return wrapper\n"
                       "\n"
                       "\n"
                       "@logged\n"
                       "def work() -> int:\n"
                       "    return 1\n"
                       "\n"
                       "\n"
                       "def caller() -> int:\n"
                       "    return work()\n"),
        })
        # A call to the decorated name still reaches the analyzed body.
        assert project.callgraph.callees("mod.caller") == {"mod.work"}
        # The nested functools.wraps wrapper is indexed on its own.
        assert project.callgraph.function("mod.logged.wrapper") is not None

    def test_constructor_resolves_to_init(self, tmp_path):
        project = build_project(tmp_path, {
            "mod.py": ("class Widget:\n"
                       "    def __init__(self, size: int) -> None:\n"
                       "        self.size = size\n"
                       "\n"
                       "\n"
                       "def build() -> Widget:\n"
                       "    return Widget(3)\n"),
        })
        assert project.callgraph.callees("mod.build") == \
            {"mod.Widget.__init__"}

    def test_self_method_resolves_within_class(self, tmp_path):
        project = build_project(tmp_path, {
            "mod.py": ("class Runner:\n"
                       "    def step(self) -> int:\n"
                       "        return 1\n"
                       "\n"
                       "    def run(self) -> int:\n"
                       "        return self.step()\n"),
        })
        assert project.callgraph.callees("mod.Runner.run") == \
            {"mod.Runner.step"}


class TestDefUse:
    def _flow(self, source: str):
        node = ast.parse(source).body[0]
        return build_flow(node)

    def test_params_and_assigns_are_definitions(self):
        flow = self._flow("def f(a, b):\n"
                          "    c = a + b\n"
                          "    return c\n")
        assert set(flow.defs) == {"a", "b", "c"}
        kinds = {d.kind for d in flow.defs["a"]}
        assert kinds == {"param"}

    def test_loop_and_with_targets(self):
        flow = self._flow("def f(items):\n"
                          "    with open('x') as fh:\n"
                          "        for line in fh:\n"
                          "            items.append(line)\n")
        assert "fh" in flow.defs
        assert "line" in flow.defs

    def test_subscript_store_marks_base_mutated(self):
        flow = self._flow("def f(table, key, value):\n"
                          "    table[key] = value\n")
        kinds = {d.kind for d in flow.defs["table"]}
        assert "mutate" in kinds

    def test_global_declaration_recorded(self):
        flow = self._flow("def f(value):\n"
                          "    global _state\n"
                          "    _state = value\n")
        assert "_state" in flow.global_names


class TestTaintFlows:
    def test_volatile_flows_through_helper_into_sink(self, tmp_path):
        project = build_project(tmp_path, {
            "keys.py": ("def spec_key(spec: dict) -> str:\n"
                        "    return str(sorted(spec))\n"),
            "app.py": ("import os\n"
                       "\n"
                       "from keys import spec_key\n"
                       "\n"
                       "\n"
                       "def decorate(spec: dict) -> dict:\n"
                       "    spec['host'] = os.environ.get('HOST')\n"
                       "    return spec\n"
                       "\n"
                       "\n"
                       "def key_of(spec: dict) -> str:\n"
                       "    return spec_key(decorate(spec))\n"),
        })
        hits = project.taint.hits()
        assert len(hits) == 1
        assert hits[0].sink == "spec_key"
        assert hits[0].sources == ("os.environ",)

    def test_pure_flow_produces_no_hits(self, tmp_path):
        project = build_project(tmp_path, {
            "keys.py": ("def spec_key(spec: dict) -> str:\n"
                        "    return str(sorted(spec))\n"),
            "app.py": ("from keys import spec_key\n"
                       "\n"
                       "\n"
                       "def key_of(spec: dict) -> str:\n"
                       "    return spec_key(dict(spec))\n"),
        })
        assert project.taint.hits() == []

    def test_executor_config_does_not_taint_results(self, tmp_path):
        project = build_project(tmp_path, {
            "keys.py": ("def spec_key(spec: dict) -> str:\n"
                        "    return str(sorted(spec))\n"),
            "app.py": ("import os\n"
                       "\n"
                       "from concurrent.futures import ProcessPoolExecutor\n"
                       "from keys import spec_key\n"
                       "\n"
                       "\n"
                       "def run(fn, specs: list) -> list:\n"
                       "    pool = ProcessPoolExecutor("
                       "max_workers=os.cpu_count())\n"
                       "    with pool:\n"
                       "        futures = [pool.submit(fn, s) "
                       "for s in specs]\n"
                       "        done = [f.result() for f in futures]\n"
                       "    return [spec_key(s) for s in specs]\n"),
        })
        assert project.taint.hits() == []

    def test_ambient_global_read_is_a_source(self, tmp_path):
        project = build_project(tmp_path, {
            "state.py": ("_mode = 'auto'\n"
                         "\n"
                         "\n"
                         "def set_mode(mode: str) -> None:"
                         "  # repro-lint: zone=init\n"
                         "    global _mode\n"
                         "    _mode = mode\n"
                         "\n"
                         "\n"
                         "def get_mode() -> str:\n"
                         "    return _mode\n"),
            "keys.py": ("def spec_key(spec: dict) -> str:\n"
                        "    return str(sorted(spec))\n"),
            "app.py": ("from keys import spec_key\n"
                       "from state import get_mode\n"
                       "\n"
                       "\n"
                       "def key_of(spec: dict) -> str:\n"
                       "    return spec_key({'m': get_mode(), **spec})\n"),
        })
        hits = project.taint.hits()
        assert len(hits) == 1
        assert "state._mode" in hits[0].sources[0]


class TestAmbientInventory:
    def test_rebound_global_is_ambient(self, tmp_path):
        project = build_project(tmp_path, {
            "mod.py": ("_state = 'a'\n"
                       "\n"
                       "\n"
                       "def flip() -> None:\n"
                       "    global _state\n"
                       "    _state = 'b'\n"),
        })
        assert "mod._state" in project.ambient_globals
        targets = {m.target for m in project.global_mutations}
        assert targets == {"mod._state"}

    def test_cross_module_attribute_write_detected(self, tmp_path):
        project = build_project(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/state.py": "_flags = 'off'\n",
            "pkg/user.py": ("from . import state\n"
                            "\n"
                            "\n"
                            "def poke() -> None:\n"
                            "    state._flags = 'on'\n"),
        })
        kinds = {(m.target, m.kind) for m in project.global_mutations}
        assert ("pkg.state._flags", "cross-module") in kinds

    def test_untouched_global_is_not_a_taint_source(self, tmp_path):
        project = build_project(tmp_path, {
            "mod.py": ("_LIMIT = 10\n"
                       "\n"
                       "\n"
                       "def read() -> int:\n"
                       "    return _LIMIT\n"),
        })
        assert project.taint.hits() == []


class TestZones:
    def test_def_line_zone_covers_function_body(self, tmp_path):
        project = build_project(tmp_path, {
            "mod.py": ("def setup() -> None:  # repro-lint: zone=init\n"
                       "    x = 1\n"
                       "    del x\n"),
        })
        path = str(tmp_path / "mod.py")
        assert project.zone_at(path, 1) == "init"
        assert project.zone_at(path, 3) == "init"
        assert project.zone_at(path, 4) is None

    def test_non_def_zone_is_line_scoped(self, tmp_path):
        project = build_project(tmp_path, {
            "mod.py": ("_cache = {}  # repro-lint: zone=init\n"
                       "_other = {}\n"),
        })
        path = str(tmp_path / "mod.py")
        assert project.zone_at(path, 1) == "init"
        assert project.zone_at(path, 2) is None


@pytest.mark.parametrize("source", [
    "def f(:\n",          # syntax error upstream: engine turns into RL000
])
def test_project_context_not_built_from_broken_files(tmp_path, source):
    """The engine only hands successfully-parsed files to the project
    phase; a broken file must not abort whole-program analysis."""
    from repro.analysis import lint_paths
    good = tmp_path / "good.py"
    good.write_text("_registry: dict[str, int] = {}\n")
    bad = tmp_path / "broken.py"
    bad.write_text(source)
    codes = sorted(f.code for f in lint_paths([tmp_path]))
    assert codes == ["RL000", "RL103"]
