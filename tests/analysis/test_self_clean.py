"""The repo must pass its own determinism linter.

This is the acceptance gate: ``repro-lint src/repro`` exits 0.  Any new
code that reintroduces unseeded RNGs, wall-clock reads in simulator hot
paths, float equality, mutable defaults, non-JSON spec fields,
unannotated public functions, or swallowed exceptions fails tier-1 here
— not just in the CI lint job.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import lint_paths

SRC = Path(__file__).parents[2] / "src" / "repro"


def test_source_tree_exists():
    assert (SRC / "__init__.py").is_file()


def test_repro_lint_clean_on_repo():
    findings = lint_paths([SRC])
    assert findings == [], "repro-lint findings on src/repro:\n" + "\n".join(
        f.format() for f in findings)
