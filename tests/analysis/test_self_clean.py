"""The repo must pass its own determinism linter.

This is the acceptance gate: ``repro-lint src/repro`` exits 0 with the
full rule set — the per-file RL001-RL007 rules *and* the whole-program
dataflow rules RL101-RL103 (cache-key purity, backend parity,
concurrency hazards).  Any new code that reintroduces unseeded RNGs,
wall-clock reads in simulator hot paths, volatile data flowing into
``spec_key``, backend signature drift, or unguarded ambient state fails
tier-1 here — not just in the CI lint job.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import lint_paths

REPO = Path(__file__).parents[2]
SRC = REPO / "src" / "repro"
TESTS = REPO / "tests"
BENCHMARKS = REPO / "benchmarks"
EXAMPLES = REPO / "examples"

#: Deliberately-bad lint inputs; every finding under here is the point.
LINT_FIXTURES = TESTS / "analysis" / "fixtures"

#: Whole-program rule codes (need the full tree in one lint call).
PROJECT_CODES = frozenset({"RL101", "RL102", "RL103"})


def _excluding_fixtures(findings):
    return [f for f in findings
            if LINT_FIXTURES not in Path(f.path).resolve().parents]


def test_source_tree_exists():
    assert (SRC / "__init__.py").is_file()


def test_repro_lint_clean_on_repo():
    findings = lint_paths([SRC])
    assert findings == [], "repro-lint findings on src/repro:\n" + "\n".join(
        f.format() for f in findings)


@pytest.mark.parametrize("tree", [BENCHMARKS, EXAMPLES],
                         ids=["benchmarks", "examples"])
def test_support_trees_are_clean(tree):
    """benchmarks/ and examples/ are user-facing code; they follow the
    same determinism discipline as src/repro (full rule set)."""
    findings = lint_paths([tree])
    assert findings == [], f"repro-lint findings on {tree.name}/:\n" + \
        "\n".join(f.format() for f in findings)


def test_tests_tree_has_no_rl001_findings():
    """The tests must practice the seeding discipline they enforce: no
    unseeded, legacy, or arithmetic-derived RNG streams anywhere in the
    tests tree (outside the linter's own bad-input fixtures)."""
    findings = _excluding_fixtures(
        lint_paths([TESTS], select=frozenset({"RL001"})))
    assert findings == [], "RL001 findings on tests/:\n" + "\n".join(
        f.format() for f in findings)


def test_project_rules_clean_across_all_roots():
    """RL101-RL103 see the whole program at once: src, tests,
    benchmarks, and examples linted in a single invocation so
    cross-tree flows (e.g. a test mutating ``repro.nn.backends`` state)
    are visible.  Everything outside the bad-input fixtures must be
    clean — ambient state is either fixed or carries an explicit
    ``zone=`` annotation."""
    findings = _excluding_fixtures(
        lint_paths([SRC, TESTS, BENCHMARKS, EXAMPLES],
                   select=PROJECT_CODES))
    assert findings == [], "RL101-RL103 findings:\n" + "\n".join(
        f.format() for f in findings)
