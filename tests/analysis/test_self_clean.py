"""The repo must pass its own determinism linter.

This is the acceptance gate: ``repro-lint src/repro`` exits 0.  Any new
code that reintroduces unseeded RNGs, wall-clock reads in simulator hot
paths, float equality, mutable defaults, non-JSON spec fields,
unannotated public functions, or swallowed exceptions fails tier-1 here
— not just in the CI lint job.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import lint_paths

SRC = Path(__file__).parents[2] / "src" / "repro"
TESTS = Path(__file__).parents[1]

#: Deliberately-bad lint inputs; every finding under here is the point.
LINT_FIXTURES = TESTS / "analysis" / "fixtures"


def test_source_tree_exists():
    assert (SRC / "__init__.py").is_file()


def test_repro_lint_clean_on_repo():
    findings = lint_paths([SRC])
    assert findings == [], "repro-lint findings on src/repro:\n" + "\n".join(
        f.format() for f in findings)


def test_tests_tree_has_no_rl001_findings():
    """The tests must practice the seeding discipline they enforce: no
    unseeded, legacy, or arithmetic-derived RNG streams anywhere in the
    tests tree (outside the linter's own bad-input fixtures)."""
    findings = [f for f in lint_paths([TESTS], select=frozenset({"RL001"}))
                if LINT_FIXTURES not in Path(f.path).resolve().parents]
    assert findings == [], "RL001 findings on tests/:\n" + "\n".join(
        f.format() for f in findings)
