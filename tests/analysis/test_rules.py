"""Each rule RL001-RL007 and RL101-RL103: one positive fixture (exactly
one finding, the right code) and the shared clean fixture as the
negative case."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import ALL_RULES, PROJECT_RULES, lint_paths

FIXTURES = Path(__file__).parent / "fixtures"

# fixture file (or directory, for project rules) -> the single expected
# finding code
POSITIVE_FIXTURES = {
    "rl001_bad.py": "RL001",
    "rl001_derived_seed.py": "RL001",
    "rl001_legacy.py": "RL001",
    "core/rl002_bad.py": "RL002",
    "rl003_bad.py": "RL003",
    "rl004_bad.py": "RL004",
    "rl005_bad.py": "RL005",
    "rl006_bad.py": "RL006",
    "memsim/rl007_bad.py": "RL007",
    "rl101_bad.py": "RL101",
    "rl102_pkg": "RL102",
    "rl103_bad.py": "RL103",
}


@pytest.mark.parametrize("relpath,code", sorted(POSITIVE_FIXTURES.items()))
def test_positive_fixture_triggers_exactly_once(relpath, code):
    findings = lint_paths([FIXTURES / relpath])
    assert [f.code for f in findings] == [code], (
        f"{relpath} should trigger {code} exactly once, got "
        f"{[(f.code, f.line, f.message) for f in findings]}")


def test_every_rule_has_a_positive_fixture():
    covered = set(POSITIVE_FIXTURES.values())
    assert covered == {rule.code for rule in ALL_RULES + PROJECT_RULES}


def test_clean_fixture_has_no_findings():
    findings = lint_paths([FIXTURES / "core" / "clean.py"])
    assert findings == []


def test_findings_carry_location_and_message():
    (finding,) = lint_paths([FIXTURES / "rl003_bad.py"])
    assert finding.line > 1
    assert finding.col >= 0
    assert "float equality" in finding.message
    assert str(FIXTURES / "rl003_bad.py") == finding.path


class TestZoneGates:
    def test_rl002_silent_outside_sim_zones(self, tmp_path):
        source = FIXTURES / "core" / "rl002_bad.py"
        outside = tmp_path / "harness" / "rl002_bad.py"
        outside.parent.mkdir()
        outside.write_text(source.read_text())
        assert lint_paths([outside]) == []

    def test_rl007_silent_outside_sim_zones(self, tmp_path):
        source = FIXTURES / "memsim" / "rl007_bad.py"
        outside = tmp_path / "harness" / "rl007_bad.py"
        outside.parent.mkdir()
        outside.write_text(source.read_text())
        assert lint_paths([outside]) == []

    def test_rl003_silent_in_test_files(self, tmp_path):
        target = tmp_path / "test_something.py"
        target.write_text("def _f(x: float) -> bool:\n    return x == 0.1\n")
        assert lint_paths([target]) == []


class TestSuppression:
    def test_disable_comment_silences_one_code(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "def _f(x: float) -> bool:\n"
            "    return x == 0.1  # repro-lint: disable=RL003\n")
        assert lint_paths([target]) == []

    def test_disable_all(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "def _f(x: float) -> bool:\n"
            "    return x == 0.1  # repro-lint: disable=all\n")
        assert lint_paths([target]) == []

    def test_wrong_code_does_not_suppress(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "def _f(x: float) -> bool:\n"
            "    return x == 0.1  # repro-lint: disable=RL001\n")
        assert [f.code for f in lint_paths([target])] == ["RL003"]

    def test_suppression_is_line_scoped(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "# repro-lint: disable=RL003\n"
            "def _f(x: float) -> bool:\n"
            "    return x == 0.1\n")
        assert [f.code for f in lint_paths([target])] == ["RL003"]


class TestZoneDirective:
    def test_zone_on_declaration_line_silences_rl103(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "_registry: dict[str, int] = {}  # repro-lint: zone=init\n")
        assert lint_paths([target]) == []

    def test_zone_on_def_line_covers_whole_function(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "_state = 'a'\n"
            "\n"
            "\n"
            "def _configure(value: str) -> None:  # repro-lint: zone=init\n"
            "    global _state\n"
            "    _state = value\n")
        assert lint_paths([target]) == []

    def test_unzoned_global_rebind_fires(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "_state = 'a'\n"
            "\n"
            "\n"
            "def _configure(value: str) -> None:\n"
            "    global _state\n"
            "    _state = value\n")
        assert [f.code for f in lint_paths([target])] == ["RL103"]

    def test_disable_comment_silences_project_findings_too(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "_registry: dict[str, int] = {}  # repro-lint: disable=RL103\n")
        assert lint_paths([target]) == []

    def test_constant_styled_mutable_global_is_exempt(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("_FACTORIES: dict[str, int] = {}\n")
        assert lint_paths([target]) == []


class TestSelectIgnore:
    def test_select_runs_only_named_rules(self):
        findings = lint_paths([FIXTURES], select=frozenset({"RL004"}))
        assert {f.code for f in findings} == {"RL004"}

    def test_ignore_drops_named_rules(self):
        findings = lint_paths([FIXTURES], ignore=frozenset({"RL001"}))
        assert "RL001" not in {f.code for f in findings}

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="RL999"):
            lint_paths([FIXTURES], select=frozenset({"RL999"}))


def test_syntax_error_becomes_rl000(tmp_path):
    target = tmp_path / "broken.py"
    target.write_text("def f(:\n")
    (finding,) = lint_paths([target])
    assert finding.code == "RL000"
    assert "could not parse" in finding.message


def test_findings_sorted_deterministically():
    first = lint_paths([FIXTURES])
    second = lint_paths([FIXTURES])
    assert first == second
    assert first == sorted(first)
