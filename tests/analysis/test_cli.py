"""The repro-lint CLI: output formats, exit codes, rule listing."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).parents[2]


class TestExitCodes:
    def test_clean_file_exits_zero(self, capsys):
        assert main([str(FIXTURES / "core" / "clean.py")]) == 0
        assert capsys.readouterr().out == ""

    def test_findings_exit_one(self, capsys):
        assert main([str(FIXTURES / "rl003_bad.py")]) == 1
        out = capsys.readouterr().out
        assert "RL003" in out
        assert "1 finding" in out

    def test_bad_path_exits_two(self, capsys):
        assert main([str(FIXTURES / "does_not_exist.quux")]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_select_code_exits_two(self, capsys):
        assert main(["--select", "RL999", str(FIXTURES)]) == 2
        assert "RL999" in capsys.readouterr().err


class TestOutput:
    def test_human_format_has_location_prefix(self, capsys):
        main([str(FIXTURES / "rl004_bad.py")])
        line = capsys.readouterr().out.splitlines()[0]
        path, lineno, col, rest = line.split(":", 3)
        assert path.endswith("rl004_bad.py")
        assert int(lineno) > 0 and int(col) >= 0
        assert rest.strip().startswith("RL004")

    def test_json_format_round_trips(self, capsys):
        main(["--format", "json", str(FIXTURES / "rl006_bad.py")])
        payload = json.loads(capsys.readouterr().out)
        assert [f["code"] for f in payload] == ["RL006"]
        assert set(payload[0]) == {"path", "line", "col", "code", "message"}

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RL001", "RL004", "RL007", "RL101", "RL102", "RL103"):
            assert code in out

    def test_select_flag(self, capsys):
        assert main(["--select", "RL006", str(FIXTURES)]) == 1
        codes = {line.split()[1] for line in
                 capsys.readouterr().out.splitlines() if ": RL" in line}
        assert codes == {"RL006"}


class TestSarif:
    def test_sarif_log_shape(self, capsys):
        assert main(["--format", "sarif", str(FIXTURES / "rl006_bad.py")]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        (result,) = run["results"]
        assert result["ruleId"] == "RL006"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1

    def test_sarif_catalogue_covers_all_rules(self, capsys):
        assert main(["--format", "sarif",
                     str(FIXTURES / "core" / "clean.py")]) == 0
        log = json.loads(capsys.readouterr().out)
        ids = [r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]]
        assert ids == sorted(ids)
        for code in ("RL001", "RL007", "RL101", "RL102", "RL103"):
            assert code in ids

    def test_sarif_result_links_rule_index(self, capsys):
        main(["--format", "sarif", str(FIXTURES / "rl003_bad.py")])
        log = json.loads(capsys.readouterr().out)
        run = log["runs"][0]
        (result,) = run["results"]
        rules = run["tool"]["driver"]["rules"]
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_project_rule_finding_serializes(self, capsys):
        assert main(["--format", "sarif",
                     str(FIXTURES / "rl103_bad.py")]) == 1
        log = json.loads(capsys.readouterr().out)
        (result,) = log["runs"][0]["results"]
        assert result["ruleId"] == "RL103"


class TestOutputFileAndStats:
    def test_output_writes_file_and_keeps_exit_code(self, tmp_path, capsys):
        report = tmp_path / "report.sarif"
        code = main(["--format", "sarif", "--output", str(report),
                     str(FIXTURES / "rl004_bad.py")])
        assert code == 1
        assert capsys.readouterr().out == ""
        log = json.loads(report.read_text())
        assert log["runs"][0]["results"][0]["ruleId"] == "RL004"

    def test_output_on_clean_run_writes_empty_report(self, tmp_path):
        report = tmp_path / "report.json"
        assert main(["--format", "json", "--output", str(report),
                     str(FIXTURES / "core" / "clean.py")]) == 0
        assert json.loads(report.read_text()) == []

    def test_stats_histogram_on_stderr(self, capsys):
        assert main(["--stats", str(FIXTURES / "rl003_bad.py")]) == 1
        err = capsys.readouterr().err
        assert "stats: total=1" in err
        assert "stats: RL003=1" in err
        assert "stats: RL101=0" in err


def test_module_entry_point_runs():
    """``python -m repro.analysis`` is the documented invocation."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis",
         str(FIXTURES / "core" / "clean.py")],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stderr
