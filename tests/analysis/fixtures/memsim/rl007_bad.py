"""Positive fixture: exactly one RL007 finding (bare except in a sim zone).

Lives under a ``memsim/`` directory so the zone gate applies.
"""


def _step(x: int) -> int:
    try:
        return 1 // x
    except:
        return 0
