"""Positive fixture: exactly one RL005 finding (non-JSON spec field)."""

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BadCellSpec:
    seed: int = 0
    weights: np.ndarray = None  # the offending field
