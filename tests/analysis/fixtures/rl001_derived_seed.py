"""Positive fixture: exactly one RL001 finding (arithmetic child seed)."""

import numpy as np


def _layout(seed: int) -> float:
    rng = np.random.default_rng(seed + 1)
    return float(rng.random())
