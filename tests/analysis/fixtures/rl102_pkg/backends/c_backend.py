"""Drifted backend: ``make_sim_kernels`` registration is missing."""

from __future__ import annotations


def available() -> bool:
    return True
