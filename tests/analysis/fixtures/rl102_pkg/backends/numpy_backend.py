"""Reference backend: defines the full factory surface."""

from __future__ import annotations


def available() -> bool:
    return True


def make_sim_kernels() -> object:
    return object()
