"""RL102 positive fixture: one backend module misses a factory."""

from __future__ import annotations

SIM_BACKENDS = ("numpy", "c")
