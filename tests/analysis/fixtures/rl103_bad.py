"""RL103 positive: unguarded module-level mutable registry."""

from __future__ import annotations

_registry: dict[str, int] = {}
