"""RL101 positive: a volatile source inside the cache-key computation."""

from __future__ import annotations

import os


def spec_key(spec: dict) -> str:
    salt = os.environ.get("REPRO_SALT", "")
    return f"{salt}:{sorted(spec)}"
