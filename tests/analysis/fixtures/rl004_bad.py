"""Positive fixture: exactly one RL004 finding (mutable default)."""


def _accumulate(x: int, seen: list[int] = []) -> list[int]:
    seen.append(x)
    return seen
