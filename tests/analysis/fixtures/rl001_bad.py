"""Positive fixture: exactly one RL001 finding (unseeded default_rng)."""

import numpy as np


def _draw() -> float:
    rng = np.random.default_rng()
    return float(rng.random())
