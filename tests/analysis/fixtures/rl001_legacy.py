"""Positive fixture: exactly one RL001 finding (legacy global RNG)."""

import numpy as np


def _shuffle(xs: list) -> None:
    np.random.shuffle(xs)
