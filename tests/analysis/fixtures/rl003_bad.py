"""Positive fixture: exactly one RL003 finding (float equality)."""


def _converged(loss: float) -> bool:
    return loss == 0.1
