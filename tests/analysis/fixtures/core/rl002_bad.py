"""Positive fixture: exactly one RL002 finding (wall clock in a sim zone).

Lives under a ``core/`` directory so the zone gate applies.
"""

import time


def _stamp() -> float:
    return time.time()
