"""Negative fixture: zero findings from any rule, even in a sim zone.

Exercises the allowed counterpart of every rule: seeded RNGs and
SeedSequence-derived children (RL001), pure functions of the spec
(RL002), tolerance-based float comparison (RL003), immutable defaults
(RL004), JSON-clean spec fields (RL005), fully annotated public API
(RL006), and narrow, handled exceptions (RL007).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CleanCellSpec:
    seed: int = 0
    lr: float = 0.1
    name: str = "cell"
    widths: tuple[int, ...] = (1, 2, 4)
    overrides: dict[str, int | float] | None = None


def run_cell(spec: CleanCellSpec, repeats: int = 1) -> list[float]:
    """Deterministic cell: same spec, same output, bit for bit."""
    seeds = np.random.SeedSequence(spec.seed).spawn(repeats)
    out: list[float] = []
    for child in seeds:
        rng = np.random.default_rng(child)
        value = float(rng.random()) * spec.lr
        if math.isclose(value, 0.0, abs_tol=1e-12):
            value = 0.0
        out.append(value)
    return out


def parse_width(raw: str) -> int | None:
    try:
        return int(raw)
    except ValueError:
        return None
