"""Positive fixture: exactly one RL006 finding (unannotated public fn)."""


def entry_point(x, y):
    return x + y
