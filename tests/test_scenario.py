"""Long-form scenario: the whole CLS story on one realistic deployment.

A service runs through four phases — pointer-heavy request handling, a
batch analytics scan, back to request handling, then a brand-new
structure — against a memory holding 40% of the total footprint.  One
fully-featured CLS prefetcher (Hebbian neocortex + recall + replay +
phase detection + accuracy gating) rides through all of it, and the test
asserts the properties each paper mechanism is supposed to deliver:

1. it learns the first phase online (misses removed vs baseline);
2. the scan phase does not destroy the request-phase knowledge (replay +
   sparse separation): returning to phase 1 performs at least as well as
   the first visit;
3. the brand-new final phase is picked up quickly (recall);
4. bookkeeping is consistent throughout.
"""

from __future__ import annotations

import pytest

from repro.core.cls_prefetcher import CLSPrefetcher, CLSPrefetcherConfig
from repro.harness.models import experiment_hebbian_config
from repro.memsim.prefetcher import NullPrefetcher
from repro.memsim.simulator import SimConfig, simulate
from repro.patterns.generators import PatternSpec, pointer_chase, stride
from repro.seeding import spawn_seeds


# Each phase cycles a 500-page working set against a 375-page memory
# (fraction 0.25 of the 1500-page total), so every phase thrashes and
# there is real work for learning to remove.
N = 2_500
SEED = 0
PHASE_SEEDS = spawn_seeds(SEED, 3)
REQUESTS = pointer_chase(PatternSpec(n=N, working_set=500, element_size=4096,
                                     base=0x1000_0000, seed=PHASE_SEEDS[0]))
SCAN = stride(PatternSpec(n=N, working_set=500, element_size=4096,
                          base=0x5000_0000, seed=PHASE_SEEDS[1]))
FRESH = pointer_chase(PatternSpec(n=N, working_set=500, element_size=4096,
                                  base=0x9000_0000, seed=PHASE_SEEDS[2]))
TRACE = REQUESTS.concat(SCAN).concat(REQUESTS).concat(FRESH)
SIM = SimConfig(memory_fraction=0.25)


@pytest.fixture(scope="module")
def runs():
    prefetcher = CLSPrefetcher(CLSPrefetcherConfig(
        model="hebbian", vocab_size=2048, encoder="page",
        hebbian=experiment_hebbian_config(2048, seed=SEED),
        prefetch_length=2, prefetch_width=2, min_confidence=0.25,
        recall=True, replay_policy="full", replay_per_step=1,
        phase_detection=True, seed=SEED))
    baseline = simulate(TRACE, NullPrefetcher(), SIM, record_miss_indices=True)
    run = simulate(TRACE, prefetcher, SIM, record_miss_indices=True)
    return baseline, run, prefetcher


def phase_misses(indices: list[int], phase: int) -> int:
    start, stop = phase * N, (phase + 1) * N
    return sum(1 for i in indices if start <= i < stop)


class TestScenario:
    def test_overall_benefit(self, runs):
        baseline, run, _ = runs
        assert run.demand_misses < baseline.demand_misses
        removed = run.percent_misses_removed(baseline)
        assert removed > 15.0

    def test_phase1_learned_online(self, runs):
        baseline, run, _ = runs
        base = phase_misses(baseline.miss_indices, 0)
        ours = phase_misses(run.miss_indices, 0)
        assert ours < base * 0.9

    def test_return_to_phase1_no_regression(self, runs):
        """After the scan interlude, the request phase performs at least
        as well as its first visit — knowledge survived."""
        baseline, run, _ = runs
        first = (phase_misses(run.miss_indices, 0)
                 / max(1, phase_misses(baseline.miss_indices, 0)))
        returned = (phase_misses(run.miss_indices, 2)
                    / max(1, phase_misses(baseline.miss_indices, 2)))
        assert returned <= first + 0.05

    def test_fresh_phase_adapts(self, runs):
        baseline, run, _ = runs
        base = phase_misses(baseline.miss_indices, 3)
        ours = phase_misses(run.miss_indices, 3)
        assert ours < base * 0.95  # recall gives early coverage

    def test_accuracy_stays_high(self, runs):
        _, run, _ = runs
        assert run.stats.prefetch_accuracy > 0.7

    def test_bookkeeping_consistent(self, runs):
        baseline, run, prefetcher = runs
        assert run.stats.accesses == len(TRACE)
        assert prefetcher.stats.misses_seen == run.demand_misses
        assert prefetcher.stats.trained_steps > 0
        assert prefetcher.recall_stats.consulted > 0
        assert prefetcher.stats.phases_seen >= 2
