"""Tests for the SeedSequence-based child-seed derivation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.seeding import child_rng, spawn_seeds


class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(0, 4) == spawn_seeds(0, 4)

    def test_prefix_stable(self):
        # Growing a grid must never reshuffle existing cells.
        assert spawn_seeds(7, 8)[:3] == spawn_seeds(7, 3)

    def test_golden_values(self):
        # Pinned: these feed JSON specs and disk-cache keys, so any change
        # here invalidates every cached grid cell.
        assert spawn_seeds(0, 3) == (3757552657, 673228719, 3241444873)

    def test_children_distinct_from_arithmetic_neighbors(self):
        # The whole point: child seeds of s never collide with the plain
        # seeds s+1, s+2, ... of neighboring experiment cells.
        children = set(spawn_seeds(0, 16))
        assert children.isdisjoint(range(32))

    def test_distinct_parents_distinct_children(self):
        assert set(spawn_seeds(0, 8)).isdisjoint(spawn_seeds(1, 8))

    def test_plain_int_type(self):
        assert all(type(s) is int for s in spawn_seeds(3, 4))

    def test_rejects_negative_n(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)


class TestChildRng:
    def test_matches_spawn_seeds(self):
        expected = np.random.default_rng(spawn_seeds(5, 3)[2])
        assert child_rng(5, 2).integers(1 << 30) == expected.integers(1 << 30)

    def test_streams_independent(self):
        a = child_rng(0, 0).integers(1 << 30, size=8)
        b = child_rng(0, 1).integers(1 << 30, size=8)
        assert not np.array_equal(a, b)

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            child_rng(0, -1)
