"""Property-based tests for the Table 1 generators and Trace persistence.

Two families of properties (PR 5):

- **npz round-trip bit-identity** — any generated trace survives
  ``Trace.save`` / ``Trace.load`` with every column bit-identical
  (values *and* dtypes) and its name/metadata intact.  This is the
  contract the trace-materialization cache and the telemetry manifest
  both lean on.
- **page-footprint bounds** — every generator respects the bound its
  data-structure layout declares: a traversal over ``working_set``
  elements can touch at most a layout-dependent number of distinct
  addresses, and therefore at most that many distinct pages, all inside
  the declared address regions.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.patterns.generators import (  # noqa: E402
    PATTERN_NAMES,
    PatternSpec,
    generate,
)

_SPECS = st.builds(
    PatternSpec,
    n=st.integers(min_value=1, max_value=2_000),
    element_size=st.sampled_from([1, 8, 64, 256, 4096]),
    working_set=st.integers(min_value=1, max_value=400),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)


def _declared_bounds(pattern: str, spec: PatternSpec) -> tuple[int, int, int]:
    """(max distinct addresses, lowest address, end of address region)."""
    ws = spec.working_set
    if pattern in ("stride", "pointer_chase"):
        return ws, spec.base, spec.base + ws * spec.element_size
    if pattern == "indirect_stride":
        # Pointer array at base (8-byte slots) + target region at
        # base + 2*ws*element_size; whichever region ends higher wins.
        target_end = spec.base + 3 * ws * spec.element_size
        return 2 * ws, spec.base, max(spec.base + ws * 8, target_end)
    if pattern == "indirect_index":
        b_base = spec.base + 2 * ws * 8
        return 2 * ws, spec.base, b_base + ws * spec.element_size
    if pattern == "pointer_offset":
        # Default offsets (0, 16, 32): three fields per node.
        return 3 * ws, spec.base, spec.base + ws * spec.element_size + 32
    raise AssertionError(f"unhandled pattern {pattern}")


@settings(max_examples=40, deadline=None)
@given(pattern=st.sampled_from(PATTERN_NAMES), spec=_SPECS)
def test_generators_respect_declared_footprint(pattern: str,
                                               spec: PatternSpec) -> None:
    trace = generate(pattern, spec)
    assert len(trace) == spec.n
    max_distinct, low, end = _declared_bounds(pattern, spec)
    addresses = trace.addresses
    assert int(addresses.min()) >= low
    assert int(addresses.max()) < end
    distinct = int(np.unique(addresses).size)
    assert distinct <= max_distinct
    # Distinct pages can never exceed distinct addresses, at any page
    # size (the simulator's footprint-sized cache depends on this).
    for page_size in (64, 4096):
        assert trace.footprint_pages(page_size) <= distinct


@settings(max_examples=40, deadline=None)
@given(pattern=st.sampled_from(PATTERN_NAMES), spec=_SPECS)
def test_generators_deterministic(pattern: str, spec: PatternSpec) -> None:
    a = generate(pattern, spec)
    b = generate(pattern, spec)
    assert np.array_equal(a.addresses, b.addresses)
    assert a.metadata == b.metadata


@settings(max_examples=25, deadline=None)
@given(pattern=st.sampled_from(PATTERN_NAMES), spec=_SPECS)
def test_npz_round_trip_bit_identity(pattern: str, spec: PatternSpec) -> None:
    trace = generate(pattern, spec)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "trace.npz"
        trace.save(path)
        loaded = type(trace).load(path)
    assert loaded.name == trace.name
    assert loaded.metadata == trace.metadata
    for column in ("addresses", "kinds", "stream_ids", "timestamps"):
        before = getattr(trace, column)
        after = getattr(loaded, column)
        assert before.dtype == after.dtype, column
        assert np.array_equal(before, after), column
