"""Tests for the Table 1 pattern generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.patterns import generators
from repro.patterns.generators import PATTERN_NAMES, PatternSpec, generate
from repro.seeding import spawn_seeds


class TestSpecValidation:
    @pytest.mark.parametrize("field,value", [
        ("n", 0), ("n", -1), ("element_size", 0), ("working_set", 0),
    ])
    def test_rejects_non_positive(self, field, value):
        kwargs = {field: value}
        with pytest.raises(ValueError):
            PatternSpec(**kwargs)


class TestStride:
    def test_constant_delta(self, small_spec):
        t = generators.stride(small_spec)
        deltas = np.unique(t.deltas())
        # one positive in-run delta plus the wraparound jump
        assert len(deltas) <= 2
        assert small_spec.element_size in deltas

    def test_custom_stride(self, small_spec):
        t = generators.stride(small_spec, stride_elements=3)
        mode = np.bincount(
            (t.deltas() - t.deltas().min()).astype(np.int64)).argmax() + t.deltas().min()
        assert mode == 3 * small_spec.element_size

    def test_wraps_at_working_set(self, small_spec):
        t = generators.stride(small_spec)
        footprint = len(np.unique(t.addresses))
        assert footprint == small_spec.working_set


class TestPointerChase:
    def test_periodic_with_working_set(self, small_spec):
        t = generators.pointer_chase(small_spec)
        ws = small_spec.working_set
        assert np.array_equal(t.addresses[:ws], t.addresses[ws:2 * ws])

    def test_pseudorandom_deltas(self, small_spec):
        t = generators.pointer_chase(small_spec)
        distinct = len(np.unique(t.deltas()[: small_spec.working_set - 1]))
        assert distinct > small_spec.working_set // 2

    def test_visits_whole_working_set(self, small_spec):
        t = generators.pointer_chase(small_spec)
        assert len(np.unique(t.addresses)) == small_spec.working_set

    def test_different_seeds_different_orders(self, small_spec):
        t1 = generators.pointer_chase(small_spec)
        alt_seed = spawn_seeds(small_spec.seed, 1)[0]
        t2 = generators.pointer_chase(PatternSpec(
            n=small_spec.n, working_set=small_spec.working_set,
            element_size=small_spec.element_size, seed=alt_seed))
        assert not np.array_equal(t1.addresses, t2.addresses)


class TestIndirectStride:
    def test_alternates_array_and_target(self, small_spec):
        t = generators.indirect_stride(small_spec)
        array_region = t.addresses[0::2]
        target_region = t.addresses[1::2]
        # array slots are strided 8-byte reads
        assert np.all(np.diff(array_region[: small_spec.working_set // 2]) == 8)
        # targets live in a disjoint higher region
        assert target_region.min() > array_region.max()

    def test_target_fixed_per_slot(self, small_spec):
        t = generators.indirect_stride(small_spec)
        ws = small_spec.working_set
        # second traversal repeats the same targets
        first = t.addresses[1: 2 * ws: 2]
        second = t.addresses[2 * ws + 1: 4 * ws: 2]
        m = min(len(first), len(second))
        assert np.array_equal(first[:m], second[:m])


class TestIndirectIndex:
    def test_alternates_and_repeats(self, small_spec):
        t = generators.indirect_index(small_spec)
        ws = small_spec.working_set
        first = t.addresses[: 2 * ws]
        second = t.addresses[2 * ws: 4 * ws]
        m = min(len(first), len(second))
        assert np.array_equal(first[:m], second[:m])

    def test_b_accesses_cover_indices(self, small_spec):
        t = generators.indirect_index(small_spec)
        b_addresses = np.unique(t.addresses[1::2])
        assert len(b_addresses) == small_spec.working_set

    def test_golden_trace_seedsequence_derivation(self):
        """Pin the exact output under the SeedSequence.spawn child-seed
        derivation (replaced the collision-prone ``spec.seed + 1``)."""
        t = generators.indirect_index(
            generators.PatternSpec(n=12, working_set=8, seed=0))
        assert list(t.addresses) == [
            1048576, 1048960, 1048584, 1049024, 1048592, 1048896,
            1048600, 1048832, 1048608, 1048768, 1048616, 1048704,
        ]
        # A different parent seed must reshuffle the b-array layout.
        t1 = generators.indirect_index(
            generators.PatternSpec(n=12, working_set=8, seed=1))
        assert list(t1.addresses) != list(t.addresses)


class TestPointerOffset:
    def test_touches_fields_at_offsets(self, small_spec):
        offsets = (0, 16, 32)
        t = generators.pointer_offset(small_spec, offsets=offsets)
        base0 = t.addresses[0]
        assert t.addresses[1] == base0 + 16
        assert t.addresses[2] == base0 + 32

    def test_rejects_empty_offsets(self, small_spec):
        with pytest.raises(ValueError):
            generators.pointer_offset(small_spec, offsets=())

    def test_node_order_matches_chase(self, small_spec):
        chase = generators.pointer_chase(small_spec)
        offset = generators.pointer_offset(small_spec, offsets=(0,))
        m = min(len(chase), len(offset))
        assert np.array_equal(chase.addresses[:m], offset.addresses[:m])


class TestDispatch:
    @pytest.mark.parametrize("name", PATTERN_NAMES)
    def test_generate_by_name(self, name, small_spec):
        t = generate(name, small_spec)
        assert len(t) == small_spec.n
        assert t.metadata["pattern"] == name

    def test_generate_unknown_raises(self, small_spec):
        with pytest.raises(ValueError, match="unknown pattern"):
            generate("zigzag", small_spec)


@pytest.mark.parametrize("name", PATTERN_NAMES)
def test_deterministic_for_seed(name):
    spec = PatternSpec(n=300, working_set=30, seed=11)
    t1 = generate(name, spec)
    t2 = generate(name, spec)
    assert np.array_equal(t1.addresses, t2.addresses)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(1, 500), ws=st.integers(1, 100),
       name=st.sampled_from(PATTERN_NAMES))
def test_property_exact_length_and_nonnegative(n, ws, name):
    spec = PatternSpec(n=n, working_set=ws, seed=0)
    t = generate(name, spec)
    assert len(t) == n
    assert int(t.addresses.min()) >= 0
