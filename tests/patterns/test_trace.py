"""Tests for repro.patterns.trace."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.patterns.trace import (
    KIND_LOAD,
    KIND_STORE,
    MemoryAccess,
    Trace,
    interleave,
)


def make_trace(addresses, **kwargs) -> Trace:
    return Trace(name="t", addresses=np.asarray(addresses, dtype=np.int64), **kwargs)


class TestConstruction:
    def test_defaults_fill_columns(self):
        t = make_trace([1, 2, 3])
        assert len(t) == 3
        assert t.kinds.tolist() == [KIND_LOAD] * 3
        assert t.stream_ids.tolist() == [0, 0, 0]
        assert t.timestamps.tolist() == [0, 100, 200]

    def test_explicit_columns_kept(self):
        t = make_trace([1, 2], kinds=np.array([KIND_LOAD, KIND_STORE]),
                       stream_ids=np.array([4, 5]),
                       timestamps=np.array([10, 20]))
        assert t.kinds.tolist() == [KIND_LOAD, KIND_STORE]
        assert t.stream_ids.tolist() == [4, 5]
        assert t.timestamps.tolist() == [10, 20]

    def test_rejects_2d_addresses(self):
        with pytest.raises(ValueError, match="1-D"):
            Trace(name="t", addresses=np.zeros((2, 2), dtype=np.int64))

    def test_rejects_mismatched_column_length(self):
        with pytest.raises(ValueError, match="kinds"):
            make_trace([1, 2, 3], kinds=np.zeros(2, dtype=np.uint8))

    def test_indexing_returns_memory_access(self):
        t = make_trace([7, 8])
        access = t[1]
        assert isinstance(access, MemoryAccess)
        assert access.address == 8
        assert access.kind_name == "load"

    def test_iteration_yields_all(self):
        t = make_trace([5, 6, 7])
        assert [a.address for a in t] == [5, 6, 7]


class TestDerivedViews:
    def test_pages_shift(self):
        t = make_trace([0, 4096, 8192, 4097])
        assert t.pages(4096).tolist() == [0, 1, 2, 1]

    def test_pages_rejects_non_power_of_two(self):
        t = make_trace([0])
        with pytest.raises(ValueError, match="power of two"):
            t.pages(3000)

    def test_footprint_counts_distinct_pages(self):
        t = make_trace([0, 1, 4096, 4097, 8192])
        assert t.footprint_pages(4096) == 3
        assert t.footprint_bytes(4096) == 3 * 4096

    def test_deltas(self):
        t = make_trace([10, 20, 15])
        assert t.deltas().tolist() == [10, -5]


class TestComposition:
    def test_concat_preserves_order_and_shifts_time(self):
        a = make_trace([1, 2])
        b = make_trace([3])
        c = a.concat(b)
        assert c.addresses.tolist() == [1, 2, 3]
        assert c.timestamps[2] > c.timestamps[1]

    def test_concat_empty_left(self):
        a = make_trace([])
        b = make_trace([5])
        assert a.concat(b).addresses.tolist() == [5]

    def test_slice_copies(self):
        t = make_trace([1, 2, 3, 4])
        s = t.slice(1, 3)
        assert s.addresses.tolist() == [2, 3]
        s.addresses[0] = 99
        assert t.addresses[1] == 2

    def test_from_accesses_roundtrip(self):
        accesses = [MemoryAccess(address=i, stream_id=i % 2, timestamp=i * 10)
                    for i in range(5)]
        t = Trace.from_accesses("x", accesses)
        assert t.addresses.tolist() == list(range(5))
        assert t.stream_ids.tolist() == [0, 1, 0, 1, 0]


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        t = make_trace([1, 2, 3])
        t.metadata["foo"] = "bar"
        path = tmp_path / "trace.npz"
        t.save(path)
        loaded = Trace.load(path)
        assert loaded.name == t.name
        assert loaded.addresses.tolist() == t.addresses.tolist()
        assert loaded.metadata == {"foo": "bar"}


class TestInterleave:
    def test_preserves_per_source_order(self):
        a = make_trace([1, 2, 3])
        b = make_trace([10, 20, 30])
        merged = interleave([a, b], seed=5)
        from_a = [addr for addr, sid in zip(merged.addresses, merged.stream_ids)
                  if sid == 0]
        from_b = [addr for addr, sid in zip(merged.addresses, merged.stream_ids)
                  if sid == 1]
        assert from_a == [1, 2, 3]
        assert from_b == [10, 20, 30]

    def test_total_length(self):
        a = make_trace([1] * 7)
        b = make_trace([2] * 3)
        assert len(interleave([a, b])) == 10

    def test_deterministic_for_seed(self):
        a = make_trace(list(range(20)))
        b = make_trace(list(range(100, 120)))
        m1 = interleave([a, b], seed=9)
        m2 = interleave([a, b], seed=9)
        assert m1.addresses.tolist() == m2.addresses.tolist()

    def test_rejects_empty_list(self):
        with pytest.raises(ValueError):
            interleave([])


@settings(max_examples=30, deadline=None)
@given(addresses=st.lists(st.integers(min_value=0, max_value=2**40),
                          min_size=1, max_size=50))
def test_property_pages_consistent_with_addresses(addresses):
    t = Trace(name="p", addresses=np.array(addresses, dtype=np.int64))
    pages = t.pages(4096)
    assert np.array_equal(pages, np.array(addresses, dtype=np.int64) >> 12)


@settings(max_examples=30, deadline=None)
@given(a=st.lists(st.integers(0, 2**30), min_size=1, max_size=20),
       b=st.lists(st.integers(0, 2**30), min_size=1, max_size=20))
def test_property_concat_length_and_content(a, b):
    ta, tb = (Trace(name="x", addresses=np.array(xs, dtype=np.int64))
              for xs in (a, b))
    c = ta.concat(tb)
    assert len(c) == len(a) + len(b)
    assert c.addresses.tolist() == a + b
