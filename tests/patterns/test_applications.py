"""Tests for the application trace synthesizers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.patterns.applications import (
    ALL_APPLICATIONS,
    FIG5_APPLICATIONS,
    HARD_APPLICATIONS,
    AppSpec,
    generate_application,
    graph500,
    mcf,
    memcached,
    pagerank_graphchi,
    resnet_training,
)

SPEC = AppSpec(n=6000, seed=3)


class TestSpecValidation:
    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            AppSpec(n=0)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            AppSpec(scale=0)

    def test_scaled_floors_at_minimum(self):
        assert AppSpec(scale=0.001).scaled(100, minimum=8) == 8


class TestAllApps:
    @pytest.mark.parametrize("app", ALL_APPLICATIONS)
    def test_exact_length(self, app):
        assert len(generate_application(app, SPEC)) == SPEC.n

    @pytest.mark.parametrize("app", ALL_APPLICATIONS)
    def test_deterministic(self, app):
        t1 = generate_application(app, SPEC)
        t2 = generate_application(app, SPEC)
        assert np.array_equal(t1.addresses, t2.addresses)

    @pytest.mark.parametrize("app", ALL_APPLICATIONS)
    def test_nontrivial_footprint(self, app):
        t = generate_application(app, SPEC)
        assert t.footprint_pages() > 10

    def test_unknown_app_raises(self):
        with pytest.raises(ValueError, match="unknown application"):
            generate_application("redis", SPEC)

    def test_app_lists_are_disjoint_and_complete(self):
        assert set(FIG5_APPLICATIONS) | set(HARD_APPLICATIONS) == set(ALL_APPLICATIONS)
        assert not set(FIG5_APPLICATIONS) & set(HARD_APPLICATIONS)


class TestResnet:
    def test_repeats_across_epochs(self):
        t = resnet_training(AppSpec(n=30_000, seed=1))
        # Batches are bounded, so some addresses must reappear.
        unique = len(np.unique(t.addresses))
        assert unique < len(t)

    def test_contains_long_sequential_runs(self):
        t = resnet_training(SPEC)
        deltas = t.deltas()
        frac_4k = float(np.mean(deltas == 4096))
        assert frac_4k > 0.5  # streaming-dominated


class TestPagerank:
    def test_alternates_edges_and_vertices(self):
        t = pagerank_graphchi(SPEC)
        edge_stream = t.addresses[0::2]
        vertex_stream = t.addresses[1::2]
        assert edge_stream.max() < 0x5000_0000
        assert vertex_stream.min() >= 0x5000_0000

    def test_iterations_repeat(self):
        spec = AppSpec(n=20_000, seed=2)
        t = pagerank_graphchi(spec)
        # one iteration covers every shard twice over (edges + vertices);
        # the next iteration replays the identical address sequence
        first = t.addresses[:1000]
        rest = t.addresses[1:]
        found = any(np.array_equal(first, rest[i:i + 1000])
                    for i in range(len(rest) - 1000))
        assert found


class TestMcf:
    def test_mixes_scan_and_walk(self):
        t = mcf(SPEC)
        deltas = t.deltas()
        scan_frac = float(np.mean(deltas == 64))
        assert 0.1 < scan_frac < 0.95  # both phases present


class TestGraph500:
    def test_repeats_bfs_pass(self):
        t = graph500(AppSpec(n=12_000, seed=4))
        n = len(t)
        # a repeated pass means the first half equals a shifted window
        first = t.addresses[: n // 4]
        rest = t.addresses[n // 4:]
        found = any(np.array_equal(first, rest[i:i + len(first)])
                    for i in range(len(rest) - len(first)))
        assert found


class TestMemcached:
    def test_irregular_sequence(self):
        t = memcached(SPEC)
        deltas = t.deltas()
        values, counts = np.unique(deltas, return_counts=True)
        assert counts.max() / counts.sum() < 0.5  # no dominant delta

    def test_zipf_popularity_skew(self):
        t = memcached(AppSpec(n=20_000, seed=5))
        _, counts = np.unique(t.addresses, return_counts=True)
        top_share = np.sort(counts)[::-1][:20].sum() / counts.sum()
        assert top_share > 0.05  # hot keys exist
