"""Tests for multi-phase trace composition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.patterns.phases import Phase, build_phased_trace, pattern_pairs


class TestBuildPhasedTrace:
    def test_boundaries_cover_trace(self):
        phased = build_phased_trace([Phase("stride", n=100),
                                     Phase("pointer_chase", n=150)])
        assert phased.boundaries == [(0, 100), (100, 250)]
        assert len(phased.trace) == 250

    def test_phase_slice_matches_pattern(self):
        phased = build_phased_trace([Phase("stride", n=100),
                                     Phase("pointer_chase", n=100)])
        s = phased.phase_slice(0)
        # stride slice: constant dominant delta
        deltas = np.unique(s.deltas())
        assert len(deltas) <= 2

    def test_phases_use_distinct_regions(self):
        phased = build_phased_trace([Phase("stride", n=50),
                                     Phase("stride", n=50)])
        a = phased.phase_slice(0).addresses
        b = phased.phase_slice(1).addresses
        assert set(a.tolist()).isdisjoint(b.tolist())

    def test_phase_of(self):
        phased = build_phased_trace([Phase("stride", n=10),
                                     Phase("pointer_chase", n=10)])
        assert phased.phase_of(0) == 0
        assert phased.phase_of(9) == 0
        assert phased.phase_of(10) == 1
        with pytest.raises(IndexError):
            phased.phase_of(20)

    def test_empty_phases_rejected(self):
        with pytest.raises(ValueError):
            build_phased_trace([])

    def test_spec_overrides_apply(self):
        phased = build_phased_trace([
            Phase("stride", n=40, spec_overrides={"working_set": 5}),
        ])
        assert len(np.unique(phased.trace.addresses)) == 5

    def test_name_concatenates_patterns(self):
        phased = build_phased_trace([Phase("stride", n=10),
                                     Phase("indirect_index", n=10)])
        assert phased.trace.name == "stride+indirect_index"


class TestPatternPairs:
    def test_three_pairs_of_table1_patterns(self):
        pairs = pattern_pairs()
        assert len(pairs) == 3
        for a, b in pairs:
            assert a != b
