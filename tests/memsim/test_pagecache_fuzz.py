"""Randomized op-sequence fuzz: array-backed PageCache vs the reference.

The array-backed :class:`repro.memsim.PageCache` (PR 4) must be
observationally identical to the retained ``OrderedDict`` seed
implementation (:class:`repro.memsim.ReferencePageCache`): same return
value, same residency, and every ``CacheStats`` counter equal after
*every single operation* — including the thin-coverage writeback and
pollution paths (``prefetches_evicted_unused``,
``demand_evictions_by_prefetch``), which these sequences exercise by
mixing stores, prefetch storms, and capacity pressure.

Hypothesis-free by design: seeds come from ``repro.seeding`` so failures
replay exactly, and the bulk APIs (``access_run`` / ``fill_run``) are
checked against scalar replays of the same runs on a reference copy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.memsim import CacheStats, PageCache, ReferencePageCache
from repro.memsim.pagecache import MISS
from repro.seeding import child_rng

#: Tight page universe relative to capacity so evictions, redundant
#: prefetches and prefetch-hits all occur constantly.
N_PAGES = 24
CAPACITY = 8
N_OPS = 2_000


def _counters(stats: CacheStats) -> dict:
    return stats.as_dict()


def _random_op(rng: np.random.Generator, cache: PageCache,
               ref: ReferencePageCache) -> None:
    op = int(rng.integers(0, 4))
    page = int(rng.integers(0, N_PAGES))
    store = bool(rng.integers(0, 2))
    if op == 0:  # demand access (miss left unfilled: cold re-probe)
        assert cache.access(page, store) == ref.access(page, store)
    elif op == 1:  # access-then-fill, the simulator's miss protocol
        got = cache.access(page, store)
        want = ref.access(page, store)
        assert got == want
        if want == MISS:
            cache.fill(page, store)
            ref.fill(page, store)
    elif op == 2:  # bare fill (refresh path when already resident)
        cache.fill(page, store)
        ref.fill(page, store)
    else:  # prefetch insert (pollution / redundancy paths)
        assert cache.insert_prefetch(page) == ref.insert_prefetch(page)


@pytest.mark.parametrize("stream", range(8))
def test_fuzz_scalar_ops_match_reference(stream: int) -> None:
    rng = child_rng(20240, stream)
    cache = PageCache(CAPACITY)
    ref = ReferencePageCache(CAPACITY)
    for _ in range(N_OPS):
        _random_op(rng, cache, ref)
        assert _counters(cache.stats) == _counters(ref.stats)
        assert cache.resident_pages() == ref.resident_pages()
        assert cache.dirty_pages() == ref.dirty_pages()


@pytest.mark.parametrize("stream", range(4))
def test_fuzz_scalar_ops_with_universe_attached(stream: int) -> None:
    """The cid acceleration index must not perturb scalar semantics."""
    rng = child_rng(20241, stream)
    cache = PageCache(CAPACITY)
    cache.attach_universe(np.arange(N_PAGES, dtype=np.int64))
    ref = ReferencePageCache(CAPACITY)
    for _ in range(N_OPS):
        _random_op(rng, cache, ref)
        assert _counters(cache.stats) == _counters(ref.stats)
        assert cache.resident_pages() == ref.resident_pages()


@pytest.mark.parametrize("stream", range(4))
def test_fuzz_bulk_runs_match_scalar_replay(stream: int) -> None:
    """access_run / fill_run vs per-access scalar replay on the reference."""
    rng = child_rng(20242, stream)
    universe = np.arange(N_PAGES, dtype=np.int64)
    cache = PageCache(CAPACITY)
    cache.attach_universe(universe)
    ref = ReferencePageCache(CAPACITY)
    for _ in range(300):
        kind = int(rng.integers(0, 3))
        if kind == 0:  # interleave scalar ops so runs start in varied states
            _random_op(rng, cache, ref)
        elif kind == 1:  # hit run over currently-resident pages
            resident = np.asarray(ref.resident_pages(), dtype=np.int64)
            if len(resident) == 0:
                continue
            n = int(rng.integers(1, 12))
            run = resident[rng.integers(0, len(resident), size=n)]
            stores = rng.integers(0, 2, size=n).astype(bool)
            cache.access_run(run, stores)
            for page, store in zip(run.tolist(), stores.tolist()):
                assert ref.access(page, store) != MISS
        else:  # distinct non-resident miss run, bulk fill
            absent = np.asarray(
                [p for p in range(N_PAGES) if p not in ref], dtype=np.int64)
            if len(absent) == 0:
                continue
            n = int(rng.integers(1, min(len(absent), CAPACITY) + 1))
            run = rng.choice(absent, size=n, replace=False)
            stores = rng.integers(0, 2, size=n).astype(bool)
            cache.fill_run(run, run, stores)
            for page, store in zip(run.tolist(), stores.tolist()):
                assert ref.access(page, store) == MISS
                ref.fill(page, store)
        assert _counters(cache.stats) == _counters(ref.stats)
        assert cache.resident_pages() == ref.resident_pages()
        assert cache.dirty_pages() == ref.dirty_pages()


def test_miss_run_length_contract() -> None:
    cache = PageCache(4)
    cache.attach_universe(np.arange(10, dtype=np.int64))
    cids = np.array([5, 6, 7, 8, 9, 5], dtype=np.int64)
    # Cold cache: run spans distinct pages, capped at capacity (4).
    assert cache.miss_run_length(cids, 0, len(cids)) == 4
    # A repeated page ends the run just before its second occurrence.
    dup = np.array([5, 6, 5, 7], dtype=np.int64)
    assert cache.miss_run_length(dup, 0, len(dup)) == 2
    # A resident page ends the run.
    cache.fill(7)
    assert cache.miss_run_length(np.array([5, 6, 7], dtype=np.int64), 0, 3) == 2


def test_first_nonresident_spans_chunk_boundaries() -> None:
    cache = PageCache(4)
    cache.attach_universe(np.arange(4, dtype=np.int64))
    for page in range(3):
        cache.fill(page)
    n = 5000  # > _SCAN_CHUNK so the windowed scan has to continue
    cids = np.zeros(n, dtype=np.int64)
    cids[1::3] = 1
    cids[2::3] = 2
    assert cache.first_nonresident(cids, 0, n) == n
    cids[n - 1] = 3
    assert cache.first_nonresident(cids, 0, n) == n - 1
    assert cache.first_nonresident(cids, 10, 10) == 10
