"""Tests for the in-flight prefetch queue (timeliness)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim.prefetch_queue import PrefetchQueue


class TestQueue:
    def test_zero_delay_lands_immediately(self):
        q = PrefetchQueue(delay_accesses=0)
        q.issue(7, at_index=3)
        assert q.landed(3) == [7]

    def test_delay_holds_until_due(self):
        q = PrefetchQueue(delay_accesses=5)
        q.issue(7, at_index=0)
        assert q.landed(4) == []
        assert q.landed(5) == [7]

    def test_landed_pops(self):
        q = PrefetchQueue(delay_accesses=0)
        q.issue(1, 0)
        q.landed(0)
        assert q.landed(10) == []

    def test_multiple_land_in_issue_order(self):
        q = PrefetchQueue(delay_accesses=2)
        q.issue(1, 0)
        q.issue(2, 0)
        q.issue(3, 1)
        assert q.landed(2) == [1, 2]
        assert q.landed(3) == [3]

    def test_drain_returns_everything(self):
        q = PrefetchQueue(delay_accesses=100)
        q.issue(1, 0)
        q.issue(2, 5)
        assert q.drain() == [1, 2]
        assert len(q) == 0

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            PrefetchQueue(delay_accesses=-1)


class TestDuplicatesContract:
    """drain/landed keep one entry per issue; *_unique coalesce (first wins).

    The simulator's accounting relies on the one-entry-per-issue contract
    (every issue is charged, even a re-issue of an in-flight page); the
    systems drivers rely on the coalescing variants to model hardware that
    merges duplicate in-flight requests.
    """

    def test_landed_keeps_one_entry_per_issue(self):
        q = PrefetchQueue(delay_accesses=0)
        for page in (7, 7, 3):
            q.issue(page, at_index=0)
        assert q.landed(0) == [7, 7, 3]

    def test_drain_keeps_one_entry_per_issue(self):
        q = PrefetchQueue(delay_accesses=4)
        for page in (5, 9, 5, 5, 2):
            q.issue(page, at_index=0)
        assert q.drain() == [5, 9, 5, 5, 2]

    def test_drain_unique_first_occurrence_wins(self):
        q = PrefetchQueue(delay_accesses=4)
        for page in (5, 9, 5, 2, 9):
            q.issue(page, at_index=0)
        assert q.drain_unique() == [5, 9, 2]

    def test_landed_unique_coalesces_across_landing_indices(self):
        q = PrefetchQueue(delay_accesses=2)
        q.issue(4, at_index=0)  # lands at 2
        q.issue(8, at_index=0)  # lands at 2
        q.issue(4, at_index=1)  # same page again, lands at 3
        assert q.landed_unique(3) == [4, 8]

    def test_out_of_order_issue_keeps_landing_then_issue_order(self):
        # A later-issued prefetch with an earlier at_index takes the
        # bisected-insert path; duplicates must survive it.
        q = PrefetchQueue(delay_accesses=3)
        q.issue(10, at_index=5)  # lands at 8
        q.issue(11, at_index=2)  # lands at 5: out-of-order insert
        q.issue(11, at_index=2)  # duplicate of the in-flight page
        assert len(q) == 3
        assert q.next_landing == 5
        assert q.landed(8) == [11, 11, 10]

    def test_drain_after_partial_landing_keeps_remaining_duplicates(self):
        q = PrefetchQueue(delay_accesses=1)
        q.issue(6, at_index=0)  # lands at 1
        q.issue(6, at_index=3)  # lands at 4
        q.issue(7, at_index=3)
        assert q.landed(1) == [6]
        assert q.drain_unique() == [6, 7]
        assert q.drain() == []


@settings(max_examples=50, deadline=None)
@given(delay=st.integers(0, 10),
       issues=st.lists(st.tuples(st.integers(0, 100), st.integers(0, 50)),
                       max_size=50))
def test_property_everything_lands_exactly_once(delay, issues):
    q = PrefetchQueue(delay_accesses=delay)
    for page, at in issues:
        q.issue(page, at)
    horizon = max((at for _, at in issues), default=0) + delay
    landed = []
    for now in range(horizon + 1):
        landed.extend(q.landed(now))
    assert sorted(landed) == sorted(page for page, _ in issues)
    assert len(q) == 0
