"""Tests for the in-flight prefetch queue (timeliness)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim.prefetch_queue import PrefetchQueue


class TestQueue:
    def test_zero_delay_lands_immediately(self):
        q = PrefetchQueue(delay_accesses=0)
        q.issue(7, at_index=3)
        assert q.landed(3) == [7]

    def test_delay_holds_until_due(self):
        q = PrefetchQueue(delay_accesses=5)
        q.issue(7, at_index=0)
        assert q.landed(4) == []
        assert q.landed(5) == [7]

    def test_landed_pops(self):
        q = PrefetchQueue(delay_accesses=0)
        q.issue(1, 0)
        q.landed(0)
        assert q.landed(10) == []

    def test_multiple_land_in_issue_order(self):
        q = PrefetchQueue(delay_accesses=2)
        q.issue(1, 0)
        q.issue(2, 0)
        q.issue(3, 1)
        assert q.landed(2) == [1, 2]
        assert q.landed(3) == [3]

    def test_drain_returns_everything(self):
        q = PrefetchQueue(delay_accesses=100)
        q.issue(1, 0)
        q.issue(2, 5)
        assert q.drain() == [1, 2]
        assert len(q) == 0

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            PrefetchQueue(delay_accesses=-1)


@settings(max_examples=50, deadline=None)
@given(delay=st.integers(0, 10),
       issues=st.lists(st.tuples(st.integers(0, 100), st.integers(0, 50)),
                       max_size=50))
def test_property_everything_lands_exactly_once(delay, issues):
    q = PrefetchQueue(delay_accesses=delay)
    for page, at in issues:
        q.issue(page, at)
    horizon = max((at for _, at in issues), default=0) + delay
    landed = []
    for now in range(horizon + 1):
        landed.extend(q.landed(now))
    assert sorted(landed) == sorted(page for page, _ in issues)
    assert len(q) == 0
