"""The simulator's fast-path protocol must be behavior-preserving.

``simulate`` dispatches to ``on_miss_fast`` / ``on_access_fast`` when a
prefetcher provides them, skipping the per-event dataclass allocations.
These tests force the event-object path by wrapping prefetchers behind a
facade that hides the fast entry points, and assert the two paths
produce bit-identical simulations: same :class:`CacheStats`, same miss
indices, and (for the CLS prefetcher) the same learned weights.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.classic import StridePrefetcher
from repro.core.cls_prefetcher import CLSPrefetcher, CLSPrefetcherConfig
from repro.memsim.events import AccessEvent, MissEvent
from repro.memsim.simulator import SimConfig, simulate
from repro.patterns.applications import AppSpec, resnet_training

SIM_CFG = SimConfig(memory_fraction=0.5, prefetch_delay_accesses=4)


class EventOnly:
    """Expose only the event-object protocol of a wrapped prefetcher.

    ``wants_accesses`` / ``is_null`` are forwarded so the simulator makes
    the same gating decisions; only the fast scalar entry points are
    hidden, forcing ``simulate`` onto MissEvent/AccessEvent dispatch.
    """

    def __init__(self, inner) -> None:
        self._inner = inner
        self.name = inner.name
        self.wants_accesses = getattr(inner, "wants_accesses", True)
        self.is_null = getattr(inner, "is_null", False)
        if getattr(inner, "on_access", None) is None:
            self.on_access = None  # mirror the wrapped prefetcher's absence

    def on_miss(self, event: MissEvent) -> list[int]:
        return self._inner.on_miss(event)

    def on_access(self, event: AccessEvent) -> list[int] | None:
        return self._inner.on_access(event)


def _trace(n: int = 12_000):
    return resnet_training(AppSpec(n=n, seed=1))


def _cls(observe_hits: bool = False) -> CLSPrefetcher:
    return CLSPrefetcher(CLSPrefetcherConfig(
        model="hebbian", vocab_size=64, observe_hits=observe_hits, seed=3))


def _run_both(make_prefetcher, trace):
    fast_pf = make_prefetcher()
    event_pf = make_prefetcher()
    assert getattr(fast_pf, "on_miss_fast", None) is not None
    fast = simulate(trace, fast_pf, SIM_CFG, record_miss_indices=True)
    event = simulate(trace, EventOnly(event_pf), SIM_CFG,
                     record_miss_indices=True)
    return fast, event, fast_pf, event_pf


class TestMissFastPath:
    def test_cls_bit_identical(self):
        trace = _trace()
        fast, event, fast_pf, event_pf = _run_both(_cls, trace)
        assert fast.stats == event.stats
        assert fast.miss_indices == event.miss_indices
        np.testing.assert_array_equal(fast_pf.model.w_out,
                                      event_pf.model.w_out)

    def test_stride_bit_identical(self):
        trace = _trace()
        fast, event, _, _ = _run_both(StridePrefetcher, trace)
        assert fast.stats == event.stats
        assert fast.miss_indices == event.miss_indices


class TestAccessFastPath:
    def test_observe_hits_bit_identical(self):
        trace = _trace(8_000)
        fast, event, fast_pf, event_pf = _run_both(
            lambda: _cls(observe_hits=True), trace)
        assert fast.stats == event.stats
        assert fast.miss_indices == event.miss_indices
        np.testing.assert_array_equal(fast_pf.model.w_out,
                                      event_pf.model.w_out)


class TestWantsAccessesGating:
    class _Recorder:
        """Counts callback invocations; declares no interest in accesses."""

        name = "recorder"
        wants_accesses = False

        def __init__(self) -> None:
            self.miss_calls = 0
            self.access_calls = 0

        def on_miss(self, event: MissEvent) -> list[int]:
            self.miss_calls += 1
            return []

        def on_access(self, event: AccessEvent) -> None:
            self.access_calls += 1

    def test_declining_prefetcher_never_sees_accesses(self):
        trace = _trace(4_000)
        recorder = self._Recorder()
        result = simulate(trace, recorder, SIM_CFG)
        assert recorder.access_calls == 0
        assert recorder.miss_calls == result.demand_misses

    def test_default_is_full_access_stream(self):
        trace = _trace(4_000)
        recorder = self._Recorder()
        recorder.wants_accesses = True
        simulate(trace, recorder, SIM_CFG)
        assert recorder.access_calls == len(trace)
