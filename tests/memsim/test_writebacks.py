"""Tests for dirty-page tracking and writeback accounting."""

from __future__ import annotations

import numpy as np

from repro.memsim.pagecache import PageCache
from repro.memsim.prefetcher import NullPrefetcher
from repro.memsim.simulator import SimConfig, simulate
from repro.patterns.applications import AppSpec, pagerank_graphchi
from repro.patterns.trace import KIND_LOAD, KIND_STORE, Trace


class TestDirtyTracking:
    def test_store_marks_dirty(self):
        cache = PageCache(capacity_pages=4)
        cache.fill(1, store=True)
        assert cache.dirty_pages() == 1

    def test_load_does_not_mark_dirty(self):
        cache = PageCache(capacity_pages=4)
        cache.fill(1)
        cache.access(1, store=False)
        assert cache.dirty_pages() == 0

    def test_store_hit_marks_dirty(self):
        cache = PageCache(capacity_pages=4)
        cache.fill(1)
        cache.access(1, store=True)
        assert cache.dirty_pages() == 1

    def test_dirty_eviction_counts_writeback(self):
        cache = PageCache(capacity_pages=1)
        cache.fill(1, store=True)
        cache.fill(2)
        assert cache.stats.writebacks == 1

    def test_clean_eviction_free(self):
        cache = PageCache(capacity_pages=1)
        cache.fill(1)
        cache.fill(2)
        assert cache.stats.writebacks == 0

    def test_dirty_bit_sticky_until_eviction(self):
        cache = PageCache(capacity_pages=2)
        cache.fill(1, store=True)
        cache.access(1, store=False)  # later load must not clean it
        cache.fill(2)
        cache.fill(3)  # evicts 1
        assert cache.stats.writebacks == 1

    def test_prefetched_then_stored_writeback(self):
        cache = PageCache(capacity_pages=1)
        cache.insert_prefetch(5)
        cache.access(5, store=True)
        cache.fill(6)
        assert cache.stats.writebacks == 1

    def test_stats_dict_has_writebacks(self):
        assert "writebacks" in PageCache(capacity_pages=1).stats.as_dict()


class TestSimulatorIntegration:
    def test_store_kinds_drive_writebacks(self):
        pages = [0, 1, 0, 1] * 20
        kinds = [KIND_STORE, KIND_LOAD] * 40
        trace = Trace(name="w", addresses=np.array(pages) * 4096,
                      kinds=np.array(kinds, dtype=np.uint8))
        run = simulate(trace, NullPrefetcher(), SimConfig(capacity_pages=1))
        # page 0 is always stored and always evicted dirty
        assert run.stats.writebacks >= 39

    def test_all_loads_no_writebacks(self):
        trace = Trace(name="r", addresses=np.arange(50) * 4096)
        run = simulate(trace, NullPrefetcher(), SimConfig(capacity_pages=4))
        assert run.stats.writebacks == 0

    def test_pagerank_vertices_produce_writebacks(self):
        trace = pagerank_graphchi(AppSpec(n=20_000, seed=0))
        assert int(trace.kinds.sum()) > 0  # stores present
        run = simulate(trace, NullPrefetcher(), SimConfig(memory_fraction=0.3))
        assert run.stats.writebacks > 0
        assert run.stats.writebacks <= run.stats.demand_misses