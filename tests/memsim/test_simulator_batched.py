"""Bit-identity: span-batched engine vs the scalar reference engine.

The PR 4 batched engine must be indistinguishable from the retained
per-access event loop: identical ``CacheStats`` dicts, identical miss
indices, and — because misses stay scalar and landings interleave at the
same access indices — identical prefetcher interaction order, asserted
via the CLS prefetcher's learned weights.  Exercised across the four
Figure 5 application traces with delay ∈ {0, 4} per the PR 4 acceptance
criteria.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.classic import StridePrefetcher
from repro.core.cls_prefetcher import CLSPrefetcher, CLSPrefetcherConfig
from repro.memsim import NullPrefetcher, SimConfig, simulate, span_length_stats
from repro.nn.backends import available_backends
from repro.patterns.applications import (
    AppSpec,
    graph500,
    mcf,
    pagerank_graphchi,
    resnet_training,
)
from repro.patterns.trace import Trace

#: PR 6: every available compiled backend must be indistinguishable from
#: the numpy reference on the same grid of workloads.
COMPILED = [b for b in available_backends("sim") if b != "numpy"]

APPS = {
    "resnet": resnet_training,
    "pagerank": pagerank_graphchi,
    "mcf": mcf,
    "graph500": graph500,
}

N = 50_000


def _trace(app: str):
    return APPS[app](AppSpec(n=N, seed=1))


def _config(delay: int) -> SimConfig:
    return SimConfig(memory_fraction=0.5, prefetch_delay_accesses=delay)


def _assert_identical(trace, make_prefetcher, delay: int):
    config = _config(delay)
    batched_pf = make_prefetcher()
    scalar_pf = make_prefetcher()
    batched = simulate(trace, batched_pf, config,
                       record_miss_indices=True, engine="batched")
    scalar = simulate(trace, scalar_pf, config,
                      record_miss_indices=True, engine="scalar")
    assert batched.stats.as_dict() == scalar.stats.as_dict()
    assert batched.miss_indices == scalar.miss_indices
    assert batched.capacity_pages == scalar.capacity_pages
    return batched_pf, scalar_pf


@pytest.mark.parametrize("app", sorted(APPS))
@pytest.mark.parametrize("delay", [0, 4])
def test_null_bit_identical(app: str, delay: int):
    _assert_identical(_trace(app), NullPrefetcher, delay)


@pytest.mark.parametrize("app", sorted(APPS))
@pytest.mark.parametrize("delay", [0, 4])
def test_stride_bit_identical(app: str, delay: int):
    _assert_identical(_trace(app), StridePrefetcher, delay)


@pytest.mark.parametrize("app", sorted(APPS))
@pytest.mark.parametrize("delay", [0, 4])
def test_cls_bit_identical_including_learned_weights(app: str, delay: int):
    def make():
        return CLSPrefetcher(CLSPrefetcherConfig(
            model="hebbian", vocab_size=64, observe_hits=False, seed=3))

    batched_pf, scalar_pf = _assert_identical(_trace(app), make, delay)
    np.testing.assert_array_equal(batched_pf.model.w_out, scalar_pf.model.w_out)


@pytest.mark.parametrize("backend", COMPILED or ["__none__"])
@pytest.mark.parametrize("app", sorted(APPS))
@pytest.mark.parametrize("delay", [0, 4])
def test_compiled_backend_bit_identical_to_numpy(app: str, delay: int,
                                                 backend: str):
    """Compiled null-replay + hit-walk kernels vs the numpy engines:
    identical stats and miss indices on the full Figure 5 grid."""
    if backend == "__none__":
        pytest.skip("no compiled backend available in this environment")
    trace = _trace(app)
    config = _config(delay)
    for make in (NullPrefetcher, StridePrefetcher):
        compiled = simulate(trace, make(), config, record_miss_indices=True,
                            backend=backend)
        reference = simulate(trace, make(), config, record_miss_indices=True,
                             backend="numpy")
        assert compiled.stats.as_dict() == reference.stats.as_dict()
        assert compiled.miss_indices == reference.miss_indices
        assert compiled.backend_used == backend


@pytest.mark.parametrize("backend", COMPILED or ["__none__"])
@pytest.mark.parametrize("app", sorted(APPS))
def test_compiled_backend_cls_weights_match_numpy(app: str, backend: str):
    """Full CLS pipeline (hebbian kernels + sim kernels live at once):
    the learned weights are bit-identical across backends."""
    if backend == "__none__":
        pytest.skip("no compiled backend available in this environment")

    def make():
        return CLSPrefetcher(CLSPrefetcherConfig(
            model="hebbian", vocab_size=64, observe_hits=False, seed=3))

    trace = _trace(app)
    config = _config(4)
    compiled_pf, reference_pf = make(), make()
    compiled = simulate(trace, compiled_pf, config,
                        record_miss_indices=True, backend=backend)
    reference = simulate(trace, reference_pf, config,
                         record_miss_indices=True, backend="numpy")
    assert compiled.stats.as_dict() == reference.stats.as_dict()
    assert compiled.miss_indices == reference.miss_indices
    np.testing.assert_array_equal(compiled_pf.model.w_out,
                                  reference_pf.model.w_out)


@pytest.mark.parametrize("backend", COMPILED or ["__none__"])
def test_compiled_backend_fuzz_random_traces(backend: str):
    """Randomized page streams (uniform, zipf-ish, strided bursts) stay
    bit-identical between the compiled and numpy backends."""
    if backend == "__none__":
        pytest.skip("no compiled backend available in this environment")
    rng = np.random.default_rng(77)
    for trial in range(6):
        n = int(rng.integers(3000, 12_000))
        kind = trial % 3
        if kind == 0:
            pages = rng.integers(0, 400, size=n)
        elif kind == 1:
            pages = np.minimum(rng.geometric(0.02, size=n), 500)
        else:
            base = np.repeat(rng.integers(0, 50, size=n // 16 + 1) * 64,
                             16)[:n]
            pages = base + np.tile(np.arange(16), n // 16 + 1)[:n]
        trace = Trace(name=f"fuzz{trial}",
                      addresses=pages.astype(np.int64) * 4096,
                      metadata={"seed": trial})
        for delay, make in ((0, NullPrefetcher), (4, StridePrefetcher)):
            compiled = simulate(trace, make(), _config(delay),
                                record_miss_indices=True, backend=backend)
            reference = simulate(trace, make(), _config(delay),
                                 record_miss_indices=True, backend="numpy")
            assert compiled.stats.as_dict() == reference.stats.as_dict(), \
                f"trial {trial} delay {delay}"
            assert compiled.miss_indices == reference.miss_indices


def test_auto_engine_rejects_batched_for_access_observers():
    observer = CLSPrefetcher(CLSPrefetcherConfig(
        model="hebbian", vocab_size=64, observe_hits=True, seed=3))
    trace = _trace("resnet")
    with pytest.raises(ValueError):
        simulate(trace, observer, _config(0), engine="batched")
    # auto must silently fall back to the scalar engine for observers.
    auto = simulate(trace, observer, _config(0), record_miss_indices=True)
    scalar = simulate(
        trace,
        CLSPrefetcher(CLSPrefetcherConfig(
            model="hebbian", vocab_size=64, observe_hits=True, seed=3)),
        _config(0), record_miss_indices=True, engine="scalar")
    assert auto.stats.as_dict() == scalar.stats.as_dict()
    assert auto.miss_indices == scalar.miss_indices


def test_unknown_engine_rejected():
    with pytest.raises(ValueError):
        simulate(_trace("resnet"), NullPrefetcher(), engine="vectorized")


def test_span_length_stats_consistency():
    trace = _trace("resnet")
    stats = span_length_stats(trace, NullPrefetcher(), _config(0))
    result = simulate(trace, NullPrefetcher(), _config(0))
    assert stats["demand_misses"] == result.demand_misses
    assert stats["n_accesses"] == N
    # Spans partition the hit accesses exactly.
    hits = stats["n_accesses"] - stats["demand_misses"]
    assert stats["mean_span"] * stats["n_spans"] == pytest.approx(hits)
