"""Fleet-vs-sequential bit-identity for the multi-tenant engine.

A :class:`repro.memsim.fleet.FleetCohort` running N lanes must be
observationally identical to N independent ``simulate()`` calls: the
same :class:`CacheStats` counters, the same miss indices, and — for
learning prefetchers — the same learned weights, on every backend
(pure-numpy lockstep and the compiled fleet kernels) and with nonzero
prefetch landing delays.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.classic import StridePrefetcher
from repro.core.cls_prefetcher import CLSPrefetcher, CLSPrefetcherConfig
from repro.memsim.fleet import FleetCohort, FleetLaneSpec, run_cohort
from repro.memsim.prefetcher import NullPrefetcher
from repro.memsim.simulator import SimConfig, SimResult, simulate
from repro.nn.backends import available_backends
from repro.patterns import PatternSpec, generate

BACKENDS = list(available_backends("sim"))
COMPILED = [b for b in BACKENDS if b != "numpy"]

PATTERNS = ("stride", "pointer_chase", "indirect_stride", "pointer_offset")


def _traces(n: int = 2500, working_set: int = 240) -> list:
    return [generate(pattern, PatternSpec(n=n, working_set=working_set,
                                          seed=seed))
            for seed, pattern in enumerate(PATTERNS)]


def _reference(spec: FleetLaneSpec, prefetcher) -> SimResult:
    return simulate(spec.trace, prefetcher, config=spec.config,
                    backend="numpy", record_miss_indices=True)


def _assert_matches(got: SimResult, want: SimResult) -> None:
    assert got.stats.as_dict() == want.stats.as_dict()
    assert got.miss_indices == want.miss_indices
    assert got.capacity_pages == want.capacity_pages
    assert got.engine_used == "fleet"


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("delay", [0, 3])
def test_null_fleet_matches_sequential(backend: str, delay: int) -> None:
    config = SimConfig(prefetch_delay_accesses=delay)
    specs = [FleetLaneSpec(trace=t, prefetcher=NullPrefetcher(),
                           config=config) for t in _traces()]
    results = run_cohort(specs, backend=backend, record_miss_indices=True)
    assert [r.backend_used for r in results] == [backend] * len(specs)
    for spec, got in zip(specs, results):
        _assert_matches(got, _reference(spec, NullPrefetcher()))


@pytest.mark.parametrize("backend", BACKENDS)
def test_cls_fleet_matches_sequential_including_weights(
        backend: str) -> None:
    """Learning lanes reproduce stats, misses AND learned CLS weights."""
    config = SimConfig(prefetch_delay_accesses=2)
    specs = [FleetLaneSpec(trace=t,
                           prefetcher=CLSPrefetcher(CLSPrefetcherConfig(
                               seed=7)),
                           config=config) for t in _traces(n=1800)]
    results = run_cohort(specs, backend=backend, record_miss_indices=True)
    for spec, got in zip(specs, results):
        reference_prefetcher = CLSPrefetcher(CLSPrefetcherConfig(seed=7))
        _assert_matches(got, _reference(spec, reference_prefetcher))
        fleet_model = spec.prefetcher.model
        reference_model = reference_prefetcher.model
        for attr in ("w_in", "w_out"):
            fleet_w = getattr(fleet_model, attr, None)
            if fleet_w is not None:
                assert np.array_equal(fleet_w,
                                      getattr(reference_model, attr))


@pytest.mark.parametrize("backend", BACKENDS)
def test_mixed_cohort_null_and_learning_lanes(backend: str) -> None:
    """Null and CLS lanes share one cohort without cross-talk (the null
    fast path runs alongside the round loop)."""
    config = SimConfig()
    traces = _traces(n=1500)
    specs = []
    for i, trace in enumerate(traces):
        if i % 2 == 0:
            specs.append(FleetLaneSpec(trace=trace,
                                       prefetcher=NullPrefetcher(),
                                       config=config))
        else:
            specs.append(FleetLaneSpec(
                trace=trace,
                prefetcher=CLSPrefetcher(CLSPrefetcherConfig(seed=3)),
                config=config))
    results = run_cohort(specs, backend=backend, record_miss_indices=True)
    for i, (spec, got) in enumerate(zip(specs, results)):
        reference_prefetcher = (NullPrefetcher() if i % 2 == 0 else
                                CLSPrefetcher(CLSPrefetcherConfig(seed=3)))
        _assert_matches(got, _reference(spec, reference_prefetcher))


@pytest.mark.parametrize("backend", BACKENDS)
def test_drain_refill_narrow_cohort(backend: str) -> None:
    """More lanes than slots: finished lanes drain and pending specs
    refill their slots; results still map back to spec order."""
    config = SimConfig()
    base = _traces(n=1200)
    # 10 lanes through a width-3 cohort, lengths varied so lanes finish
    # out of order.
    specs = [FleetLaneSpec(trace=base[i % len(base)].slice(
                 0, 600 + 97 * i, name=f"lane{i}"),
                 prefetcher=StridePrefetcher(), config=config)
             for i in range(10)]
    results = run_cohort(specs, backend=backend, record_miss_indices=True,
                         width=3)
    assert len(results) == len(specs)
    for spec, got in zip(specs, results):
        assert got.trace_name == spec.trace.name
        _assert_matches(got, _reference(spec, StridePrefetcher()))


def test_rejects_per_access_observers() -> None:
    class Watcher(StridePrefetcher):
        wants_accesses = True

        def on_access(self, event) -> None:
            pass

    trace = _traces(n=600)[0]
    specs = [FleetLaneSpec(trace=trace, prefetcher=Watcher())]
    with pytest.raises(ValueError, match="per-access"):
        run_cohort(specs)


def test_rejects_cls_per_access_observer_with_full_message() -> None:
    """A CLS config with ``observe_hits`` sets ``wants_accesses``, and
    the cohort's rejection renders the actionable remediation text."""
    prefetcher = CLSPrefetcher(CLSPrefetcherConfig(seed=1,
                                                   observe_hits=True))
    assert prefetcher.wants_accesses
    assert not prefetcher.fleet_steppable()
    trace = _traces(n=600)[0]
    specs = [FleetLaneSpec(trace=trace, prefetcher=prefetcher)]
    with pytest.raises(ValueError) as excinfo:
        run_cohort(specs)
    assert ("run wants_accesses prefetchers through simulate() instead"
            in str(excinfo.value))


def test_load_validates_slot_and_trace() -> None:
    trace = _traces(n=600)[0]
    spec = FleetLaneSpec(trace=trace, prefetcher=NullPrefetcher())
    cohort = FleetCohort.for_specs([spec], width=1)
    cohort.load(0, spec)
    with pytest.raises(ValueError, match="still active"):
        cohort.load(0, spec)
    long_spec = FleetLaneSpec(trace=_traces(n=900)[1],
                              prefetcher=NullPrefetcher())
    cohort.run_to_completion()
    with pytest.raises(ValueError, match="outside"):
        cohort.load(0, long_spec)


@pytest.mark.parametrize("backend", COMPILED or ["__none__"])
def test_compiled_and_numpy_fleets_agree(backend: str) -> None:
    """Cross-backend equivalence of the fleet itself (not just vs the
    scalar engine): compiled fleet kernels == numpy lockstep."""
    if backend == "__none__":
        pytest.skip("no compiled sim backend available")
    config = SimConfig(prefetch_delay_accesses=1)
    specs = [FleetLaneSpec(trace=t, prefetcher=StridePrefetcher(),
                           config=config) for t in _traces(n=2000)]
    compiled = run_cohort(specs, backend=backend, record_miss_indices=True)
    numpy_specs = [FleetLaneSpec(trace=s.trace,
                                 prefetcher=StridePrefetcher(),
                                 config=config) for s in specs]
    plain = run_cohort(numpy_specs, backend="numpy",
                       record_miss_indices=True)
    for got, want in zip(compiled, plain):
        assert got.stats.as_dict() == want.stats.as_dict()
        assert got.miss_indices == want.miss_indices
