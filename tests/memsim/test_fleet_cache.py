"""Fuzz-pins the (tenant, slot) FleetPageCache against the reference.

Every lane of :class:`repro.memsim.fleet_cache.FleetPageCache` must be
observationally identical to an independent
:class:`repro.memsim.ReferencePageCache`: same scalar return values,
same residency order, and every ``CacheStats`` counter equal after every
operation — under arbitrary cross-lane interleavings (lanes share the
victim-queue matrices and the batched refill path, so interleaving is
exactly what could break isolation).

The vectorized entry points (``hit_walk`` / ``fill_step``) are checked
against per-access scalar replays of the same streams on reference
caches, and a hypothesis sweep drives randomized op sequences through a
lane wedged between two noisy neighbors.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim import CacheStats, ReferencePageCache
from repro.memsim.fleet_cache import FleetPageCache
from repro.memsim.pagecache import MISS
from repro.seeding import child_rng

#: Tight page universe relative to capacity so evictions, redundant
#: prefetches and prefetch hits occur constantly (as in the single-tenant
#: fuzz suite).
N_PAGES = 24
#: Prefetches draw from a wider range so the out-of-universe dict overlay
#: (speculative prefetch pages) is exercised too.
N_PREFETCH_PAGES = N_PAGES + 8
CAPACITIES = (8, 3, 8, 5, 1)
N_OPS = 1_500


def _counters(stats: CacheStats) -> dict:
    return stats.as_dict()


def _make_fleet() -> tuple[FleetPageCache, list[ReferencePageCache]]:
    fleet = FleetPageCache(len(CAPACITIES), slot_capacity=max(CAPACITIES),
                          universe_capacity=N_PAGES)
    universe = np.arange(N_PAGES, dtype=np.int64)
    refs = []
    for lane, cap in enumerate(CAPACITIES):
        fleet.attach_lane(lane, cap, universe)
        refs.append(ReferencePageCache(cap))
    return fleet, refs


def _random_op(rng: np.random.Generator, fleet: FleetPageCache, lane: int,
               ref: ReferencePageCache) -> None:
    op = int(rng.integers(0, 4))
    store = bool(rng.integers(0, 2))
    if op == 0:  # demand access (miss left unfilled: cold re-probe)
        page = int(rng.integers(0, N_PAGES))
        assert fleet.access(lane, page, store) == ref.access(page, store)
    elif op == 1:  # access-then-fill, the simulator's miss protocol
        page = int(rng.integers(0, N_PAGES))
        got = fleet.access(lane, page, store)
        want = ref.access(page, store)
        assert got == want
        if want == MISS:
            fleet.fill(lane, page, store)
            ref.fill(page, store)
    elif op == 2:  # bare fill (refresh path when already resident)
        page = int(rng.integers(0, N_PAGES))
        fleet.fill(lane, page, store)
        ref.fill(page, store)
    else:  # prefetch insert, possibly out-of-universe (overlay path)
        page = int(rng.integers(0, N_PREFETCH_PAGES))
        assert fleet.insert_prefetch(lane, page) == ref.insert_prefetch(page)


def _assert_lane_matches(fleet: FleetPageCache, lane: int,
                         ref: ReferencePageCache) -> None:
    assert _counters(fleet.lane_stats(lane)) == _counters(ref.stats)
    assert fleet.resident_pages(lane) == ref.resident_pages()
    assert fleet.lane_len(lane) == len(ref)


@pytest.mark.parametrize("stream", range(6))
def test_fuzz_interleaved_scalar_ops_match_reference(stream: int) -> None:
    rng = child_rng(20480, stream)
    fleet, refs = _make_fleet()
    for _ in range(N_OPS):
        lane = int(rng.integers(0, len(CAPACITIES)))
        _random_op(rng, fleet, lane, refs[lane])
        _assert_lane_matches(fleet, lane, refs[lane])
    for lane, ref in enumerate(refs):
        _assert_lane_matches(fleet, lane, ref)


@pytest.mark.parametrize("stream", range(4))
def test_fuzz_vectorized_steps_match_reference(stream: int) -> None:
    """hit_walk / fill_step vs per-access scalar replay on the reference.

    Each round mirrors the fleet engine: walk every lane through its hit
    run (limit = stream length), then resolve the stalled lanes' misses
    with one ``fill_step``.  Prefetch inserts between rounds put
    undemanded pages in front of the walk and pollution in front of the
    batched evictions.
    """
    rng = child_rng(20481, stream)
    n_lanes = len(CAPACITIES)
    length = 400
    fleet, refs = _make_fleet()
    cids2d = rng.integers(0, N_PAGES, size=(n_lanes, length)).astype(np.int64)
    stores2d = rng.integers(0, 2, size=(n_lanes, length)).astype(bool)
    pos = np.zeros(n_lanes, dtype=np.int64)
    limit = np.full(n_lanes, length, dtype=np.int64)
    ref_pos = [0] * n_lanes
    while True:
        active = np.flatnonzero(pos < limit)
        if active.size == 0:
            break
        if int(rng.integers(0, 3)) == 0:  # prefetch noise between rounds
            lane = int(active[rng.integers(0, active.size)])
            page = int(rng.integers(0, N_PREFETCH_PAGES))
            assert (fleet.insert_prefetch(lane, page)
                    == refs[lane].insert_prefetch(page))
        fleet.hit_walk(active, cids2d, stores2d, pos, limit)
        # Reference replay of the same hit runs, per access.
        for lane in active.tolist():
            ref = refs[lane]
            while ref_pos[lane] < int(pos[lane]):
                i = ref_pos[lane]
                outcome = ref.access(int(cids2d[lane, i]),
                                     bool(stores2d[lane, i]))
                assert outcome != MISS
                ref_pos[lane] += 1
            _assert_lane_matches(fleet, lane, ref)
        miss_lanes = active[pos[active] < limit[active]]
        if miss_lanes.size:
            p = pos[miss_lanes]
            cids = cids2d[miss_lanes, p]
            stores = stores2d[miss_lanes, p]
            fleet.fill_step(miss_lanes, cids, cids, stores)
            pos[miss_lanes] = p + 1
            for lane, page, store in zip(miss_lanes.tolist(), cids.tolist(),
                                         stores.tolist()):
                ref = refs[lane]
                assert ref.access(int(page), bool(store)) == MISS
                ref.fill(int(page), bool(store))
                ref_pos[lane] += 1
                _assert_lane_matches(fleet, lane, ref)
    for lane, ref in enumerate(refs):
        _assert_lane_matches(fleet, lane, ref)


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(st.tuples(st.integers(0, 3), st.integers(0, N_PAGES + 3),
                              st.booleans()),
                    min_size=1, max_size=120),
       capacity=st.integers(1, 6))
def test_hypothesis_lane_matches_reference(
        ops: list[tuple[int, int, bool]], capacity: int) -> None:
    """A lane wedged between two busy neighbors stays bit-identical."""
    fleet = FleetPageCache(3, slot_capacity=8, universe_capacity=N_PAGES)
    universe = np.arange(N_PAGES, dtype=np.int64)
    for lane, cap in enumerate((8, capacity, 4)):
        fleet.attach_lane(lane, cap, universe)
    ref = ReferencePageCache(capacity)
    noise = 0
    for op, page, store in ops:
        # Neighbor churn on lanes 0 and 2: must not leak into lane 1.
        fleet.fill(0, noise % N_PAGES, store=bool(noise % 2))
        fleet.insert_prefetch(2, noise % (N_PAGES + 3))
        noise += 1
        if op == 0:
            assert fleet.access(1, page, store) == ref.access(page, store)
        elif op == 1:
            got = fleet.access(1, page, store)
            want = ref.access(page, store)
            assert got == want
            if want == MISS:
                fleet.fill(1, page, store)
                ref.fill(page, store)
        elif op == 2:
            fleet.fill(1, page, store)
            ref.fill(page, store)
        else:
            assert fleet.insert_prefetch(1, page) == ref.insert_prefetch(page)
        _assert_lane_matches(fleet, 1, ref)


def test_reset_lane_reuses_slot_cleanly() -> None:
    """Drain-and-refill: a reset lane behaves like a fresh cache."""
    fleet, refs = _make_fleet()
    rng = child_rng(20482, 0)
    for _ in range(300):
        lane = int(rng.integers(0, len(CAPACITIES)))
        _random_op(rng, fleet, lane, refs[lane])
    fleet.attach_lane(2, 4, np.arange(N_PAGES, dtype=np.int64))
    ref = ReferencePageCache(4)
    for _ in range(300):
        _random_op(rng, fleet, 2, ref)
        _assert_lane_matches(fleet, 2, ref)
    # The untouched neighbors kept their state across the refill.
    _assert_lane_matches(fleet, 0, refs[0])
    _assert_lane_matches(fleet, 1, refs[1])


def test_attach_lane_validates_dimensions() -> None:
    fleet = FleetPageCache(2, slot_capacity=4, universe_capacity=8)
    with pytest.raises(ValueError):
        fleet.attach_lane(0, 5, np.arange(8, dtype=np.int64))
    with pytest.raises(ValueError):
        fleet.attach_lane(0, 0, np.arange(8, dtype=np.int64))
    with pytest.raises(ValueError):
        fleet.attach_lane(0, 4, np.arange(9, dtype=np.int64))
    with pytest.raises(ValueError):
        FleetPageCache(0, 1, 1)
