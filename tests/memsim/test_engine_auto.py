"""Auto engine selection, the span-length probe, and compiled scans.

PR 4's span-batched engine regressed the always-in-flight workloads
(stride-resnet ran at 0.61x scalar): every access lands in a 1-2 element
span, so batching is pure overhead.  PR 6 adds a cheap bulk probe to
``simulate(engine="auto")`` that measures the steady-state span length
on a trace prefix and picks the scalar engine for short-span workloads.
These tests pin the choice structurally — the probe must send
stride-resnet to the scalar engine and stride-pagerank to the batched
one, and whichever engine ``auto`` picks must be bit-identical to both
pinned engines (so ``auto`` can never do worse than the better of the
two by more than the constant probe cost).

The second half fuzzes the compiled membership scans
(``first_nonresident`` / ``miss_run_length``) against the numpy
reference on randomized cache states.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.classic import StridePrefetcher
from repro.memsim import NullPrefetcher, SimConfig, simulate
from repro.memsim.pagecache import PageCache
from repro.nn.backends import available_backends, sim_kernels
from repro.patterns.applications import (
    AppSpec,
    graph500,
    mcf,
    pagerank_graphchi,
    resnet_training,
)

COMPILED = [b for b in available_backends("sim") if b != "numpy"]

APPS = {
    "resnet": resnet_training,
    "pagerank": pagerank_graphchi,
    "mcf": mcf,
    "graph500": graph500,
}

N = 50_000


def _trace(app: str):
    return APPS[app](AppSpec(n=N, seed=1))


def _config() -> SimConfig:
    return SimConfig(memory_fraction=0.5, prefetch_delay_accesses=4)


# ----------------------------------------------------------------------
# The span-length probe (PR 4 regression fix)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("app,expected", [
    ("resnet", "scalar"),      # ~1-access spans: batching is overhead
    ("graph500", "scalar"),    # short spans: same regression family
    ("pagerank", "batched"),   # long resident runs: spans pay off
    ("mcf", "batched"),
])
def test_probe_picks_engine_per_span_profile(app: str, expected: str):
    result = simulate(_trace(app), StridePrefetcher(), _config(),
                      backend="numpy")
    assert result.engine_used == expected


@pytest.mark.parametrize("app", ["resnet", "pagerank"])
def test_auto_bit_identical_to_both_pinned_engines(app: str):
    trace = _trace(app)
    auto = simulate(trace, StridePrefetcher(), _config(),
                    record_miss_indices=True, backend="numpy")
    for engine in ("scalar", "batched"):
        pinned = simulate(trace, StridePrefetcher(), _config(),
                          record_miss_indices=True, engine=engine,
                          backend="numpy")
        assert auto.stats.as_dict() == pinned.stats.as_dict()
        assert auto.miss_indices == pinned.miss_indices


def test_probe_skipped_for_small_traces():
    """Below the probe's minimum prefix the auto choice stays batched
    (the probe cannot measure steady state on a cold cache)."""
    trace = resnet_training(AppSpec(n=2000, seed=1))
    result = simulate(trace, StridePrefetcher(), _config(), backend="numpy")
    assert result.engine_used == "batched"


@pytest.mark.parametrize("backend", COMPILED or ["__none__"])
@pytest.mark.parametrize("app,expected", [
    ("resnet", "scalar"),      # spans ~1-2: even compiled dispatch loses
    ("graph500", "batched"),   # spans ~8: compiled scans win here (the
                               # numpy threshold would send it scalar)
    ("pagerank", "batched"),
])
def test_compiled_probe_uses_lower_span_threshold(backend: str, app: str,
                                                  expected: str):
    """The probe runs for compiled backends too, with a lower crossover:
    compiled spans are ~an order of magnitude cheaper than numpy spans,
    but a span of ~1 access still loses to the per-access loop."""
    if backend == "__none__":
        pytest.skip("no compiled backend available in this environment")
    result = simulate(_trace(app), StridePrefetcher(), _config(),
                      backend=backend)
    assert result.engine_used == expected
    assert result.backend_used == backend


def test_null_replay_engine_unaffected_by_probe():
    """Null-prefetcher runs keep the dedicated replay engine: the probe
    is a stride/CLS-path concern only."""
    result = simulate(_trace("resnet"), NullPrefetcher(), _config(),
                      backend="numpy")
    assert result.engine_used == "batched"


# ----------------------------------------------------------------------
# Compiled membership-scan fuzz vs the numpy reference
# ----------------------------------------------------------------------
def _warmed_pair(backend: str, rng: np.random.Generator,
                 universe_size: int, capacity: int,
                 ) -> tuple[PageCache, PageCache, np.ndarray]:
    universe = np.arange(universe_size, dtype=np.int64)
    ref = PageCache(capacity_pages=capacity)
    fast = PageCache(capacity_pages=capacity)
    for cache in (ref, fast):
        cache.attach_universe(universe)
    fast.attach_kernels(sim_kernels(backend))
    for page in rng.choice(universe_size, size=capacity * 2, replace=True):
        ref.fill(int(page))
        fast.fill(int(page))
    return ref, fast, universe


@pytest.mark.parametrize("backend", COMPILED or ["__none__"])
def test_scan_kernels_match_numpy_reference_fuzz(backend: str):
    if backend == "__none__":
        pytest.skip("no compiled backend available in this environment")
    rng = np.random.default_rng(404)
    for trial in range(30):
        universe_size = int(rng.integers(8, 300))
        capacity = int(rng.integers(2, max(3, universe_size // 2)))
        ref, fast, _ = _warmed_pair(backend, rng, universe_size, capacity)
        cids = rng.integers(0, universe_size,
                            size=int(rng.integers(10, 400))).astype(np.int64)
        n = len(cids)
        for _ in range(20):
            start = int(rng.integers(0, n))
            stop = int(rng.integers(start, n)) + 1
            first_ref = ref.first_nonresident(cids, start, stop)
            first_fast = fast.first_nonresident(cids, start, stop)
            assert first_ref == first_fast, (
                f"first_nonresident diverged (trial {trial})")
            if first_ref < stop:
                run_ref = ref.miss_run_length(cids, first_ref, stop)
                run_fast = fast.miss_run_length(cids, first_ref, stop)
                assert run_ref == run_fast, (
                    f"miss_run_length diverged (trial {trial})")
