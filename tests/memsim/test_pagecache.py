"""Tests for the LRU page cache and its prefetch accounting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim.pagecache import HIT, MISS, PREFETCH_HIT, PageCache


class TestBasics:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            PageCache(capacity_pages=0)

    def test_first_access_misses(self):
        cache = PageCache(capacity_pages=4)
        assert cache.access(1) == MISS

    def test_fill_then_hit(self):
        cache = PageCache(capacity_pages=4)
        cache.access(1)
        cache.fill(1)
        assert cache.access(1) == HIT

    def test_capacity_never_exceeded(self):
        cache = PageCache(capacity_pages=3)
        for page in range(10):
            cache.access(page)
            cache.fill(page)
        assert len(cache) == 3

    def test_lru_eviction_order(self):
        cache = PageCache(capacity_pages=2)
        for page in (1, 2):
            cache.access(page)
            cache.fill(page)
        cache.access(1)          # 2 becomes LRU
        cache.access(3)
        cache.fill(3)            # evicts 2
        assert 1 in cache
        assert 2 not in cache
        assert 3 in cache

    def test_fill_existing_refreshes(self):
        cache = PageCache(capacity_pages=2)
        cache.fill(1)
        cache.fill(2)
        cache.fill(1)  # refresh 1; 2 is now LRU
        cache.fill(3)
        assert 1 in cache and 2 not in cache


class TestPrefetchAccounting:
    def test_prefetch_then_demand_is_prefetch_hit(self):
        cache = PageCache(capacity_pages=4)
        assert cache.insert_prefetch(9) is True
        assert cache.access(9) == PREFETCH_HIT
        assert cache.stats.prefetch_hits == 1

    def test_second_access_is_plain_hit(self):
        cache = PageCache(capacity_pages=4)
        cache.insert_prefetch(9)
        cache.access(9)
        assert cache.access(9) == HIT
        assert cache.stats.prefetch_hits == 1

    def test_redundant_prefetch_counted(self):
        cache = PageCache(capacity_pages=4)
        cache.fill(5)
        assert cache.insert_prefetch(5) is False
        assert cache.stats.prefetches_redundant == 1

    def test_unused_prefetch_eviction_counted(self):
        cache = PageCache(capacity_pages=1)
        cache.insert_prefetch(1)
        cache.fill(2)  # evicts the unused prefetch
        assert cache.stats.prefetches_evicted_unused == 1

    def test_demand_eviction_by_prefetch_counted(self):
        cache = PageCache(capacity_pages=1)
        cache.fill(1)
        cache.insert_prefetch(2)
        assert cache.stats.demand_evictions_by_prefetch == 1

    def test_accuracy_excludes_redundant(self):
        cache = PageCache(capacity_pages=4)
        cache.fill(1)
        cache.insert_prefetch(1)   # redundant
        cache.insert_prefetch(2)   # useful
        cache.access(2)
        assert cache.stats.prefetch_accuracy == 1.0

    def test_coverage(self):
        cache = PageCache(capacity_pages=4)
        cache.access(1)            # miss
        cache.fill(1)
        cache.insert_prefetch(2)
        cache.access(2)            # covered would-be miss
        assert cache.stats.coverage == pytest.approx(0.5)


class TestStats:
    def test_miss_rate(self):
        cache = PageCache(capacity_pages=4)
        cache.access(1)
        cache.fill(1)
        cache.access(1)
        assert cache.stats.miss_rate == pytest.approx(0.5)

    def test_as_dict_keys(self):
        stats = PageCache(capacity_pages=1).stats.as_dict()
        assert {"accesses", "demand_misses", "prefetch_accuracy",
                "coverage"} <= set(stats)

    def test_zero_division_safety(self):
        stats = PageCache(capacity_pages=1).stats
        assert stats.miss_rate == 0.0
        assert stats.prefetch_accuracy == 0.0
        assert stats.coverage == 0.0


@settings(max_examples=50, deadline=None)
@given(capacity=st.integers(1, 8),
       ops=st.lists(st.tuples(st.sampled_from(["access", "prefetch"]),
                              st.integers(0, 20)), max_size=200))
def test_property_resident_bounded_and_counts_consistent(capacity, ops):
    cache = PageCache(capacity_pages=capacity)
    for op, page in ops:
        if op == "access":
            outcome = cache.access(page)
            if outcome == MISS:
                cache.fill(page)
        else:
            cache.insert_prefetch(page)
        assert len(cache) <= capacity
    stats = cache.stats
    assert stats.hits + stats.demand_misses == stats.accesses
    assert stats.prefetch_hits <= stats.prefetches_issued
