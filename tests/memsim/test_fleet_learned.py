"""Hypothesis fuzz: stacked learned-lane cohorts vs per-lane simulate().

The stacked CLS path (``core.cls_fleet.CLSFleetGroup`` riding
``nn.hebbian_fleet.HebbianFleet``) promises bit-identity with the scalar
per-miss path for every lane — stats, miss indices AND learned weights.
This suite drives randomized mixed cohorts at it: null + stride +
(at least) two CLS config groups, staggered trace lengths so lanes
finish out of order, and a cohort width below the lane count so slots
drain and refill mid-stream.  Every lane is pinned against its own
``simulate()`` reference and the ``stacked_cls=False`` scalar cohort
path, on every available backend.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.classic import StridePrefetcher
from repro.core.cls_prefetcher import CLSPrefetcher, CLSPrefetcherConfig
from repro.memsim.fleet import FleetLaneSpec, run_cohort
from repro.memsim.prefetcher import NullPrefetcher
from repro.memsim.simulator import SimConfig, simulate
from repro.nn.backends import available_backends
from repro.patterns import PatternSpec, generate

BACKENDS = list(available_backends("sim"))

PATTERNS = ("stride", "pointer_chase", "indirect_stride", "pointer_offset")

#: The two CLS recipes differ in hebbian seed, so their models carry
#: distinct (frozen) configs and land in distinct fleet groups.
CLS_SEEDS = (3, 11)

_BASE_TRACES = [generate(pattern, PatternSpec(n=1400, working_set=180,
                                              seed=seed))
                for seed, pattern in enumerate(PATTERNS)]

#: Always at least one lane per kind: two CLS groups plus null + stride
#: riding along, so group formation, the scalar fallback and the null
#: fast path all share every cohort.
_REQUIRED_KINDS = ("null", "stride", "cls0", "cls1")

lane_kind = st.sampled_from(_REQUIRED_KINDS)

cohort_plan = st.fixed_dictionaries({
    "extra_kinds": st.lists(lane_kind, min_size=0, max_size=4),
    "lengths_seed": st.integers(min_value=0, max_value=2**16),
    "width": st.integers(min_value=2, max_value=4),
    "delay": st.sampled_from([0, 2]),
})


def _build_prefetcher(kind: str):
    if kind == "null":
        return NullPrefetcher()
    if kind == "stride":
        return StridePrefetcher()
    group = int(kind[3:])
    return CLSPrefetcher(CLSPrefetcherConfig(seed=CLS_SEEDS[group]))


def _lane_specs(plan: dict, config: SimConfig) -> tuple[list, list[str]]:
    kinds = list(_REQUIRED_KINDS) + list(plan["extra_kinds"])
    rng = np.random.default_rng(plan["lengths_seed"])
    rng.shuffle(kinds)
    specs = []
    for i, kind in enumerate(kinds):
        base = _BASE_TRACES[i % len(_BASE_TRACES)]
        # Staggered lengths force out-of-order finishes and mid-stream
        # drain/refill at width < n_lanes.
        length = int(rng.integers(400, len(base)))
        trace = base.slice(0, length, name=f"{kind}-lane{i}")
        specs.append(FleetLaneSpec(trace=trace,
                                   prefetcher=_build_prefetcher(kind),
                                   config=config))
    return specs, kinds


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=6, deadline=None)
@given(plan=cohort_plan)
def test_mixed_learned_cohort_bit_identity(backend: str,
                                           plan: dict) -> None:
    config = SimConfig(prefetch_delay_accesses=plan["delay"])
    specs, kinds = _lane_specs(plan, config)
    results = run_cohort(specs, backend=backend, record_miss_indices=True,
                         width=min(plan["width"], len(specs)))

    # Scalar-cohort cross-check: same lanes, stacked path disabled.
    scalar_specs = [FleetLaneSpec(trace=spec.trace,
                                  prefetcher=_build_prefetcher(kind),
                                  config=config)
                    for spec, kind in zip(specs, kinds)]
    scalar_results = run_cohort(scalar_specs, backend=backend,
                                record_miss_indices=True,
                                width=min(plan["width"], len(specs)),
                                stacked_cls=False)

    for spec, kind, got, scalar_spec, scalar_got in zip(
            specs, kinds, results, scalar_specs, scalar_results):
        reference_prefetcher = _build_prefetcher(kind)
        want = simulate(spec.trace, reference_prefetcher, config=config,
                        backend="numpy", record_miss_indices=True)
        for candidate in (got, scalar_got):
            assert candidate.stats.as_dict() == want.stats.as_dict()
            assert candidate.miss_indices == want.miss_indices
        if kind.startswith("cls"):
            want_w = reference_prefetcher.model.w_out
            assert np.array_equal(spec.prefetcher.model.w_out, want_w)
            assert np.array_equal(scalar_spec.prefetcher.model.w_out,
                                  want_w)
            assert (spec.prefetcher.stats.replayed_pairs
                    == reference_prefetcher.stats.replayed_pairs)
