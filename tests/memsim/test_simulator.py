"""Tests for the trace-driven memory simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import NextLinePrefetcher, OracleWindowPrefetcher
from repro.memsim.prefetcher import NullPrefetcher
from repro.memsim.simulator import SimConfig, baseline_misses, simulate
from repro.patterns.generators import PatternSpec, pointer_chase, stride
from repro.patterns.trace import Trace


def seq_trace(pages: list[int], page_size: int = 4096) -> Trace:
    return Trace(name="seq", addresses=np.array(pages, dtype=np.int64) * page_size)


class TestSimConfig:
    def test_rejects_bad_page_size(self):
        with pytest.raises(ValueError):
            SimConfig(page_size=3000)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            SimConfig(memory_fraction=0.0)

    def test_explicit_capacity_overrides_fraction(self):
        cfg = SimConfig(memory_fraction=0.5, capacity_pages=7)
        assert cfg.resolve_capacity(seq_trace(list(range(100)))) == 7

    def test_fraction_capacity(self):
        cfg = SimConfig(memory_fraction=0.5)
        assert cfg.resolve_capacity(seq_trace(list(range(100)))) == 50

    def test_capacity_at_least_one(self):
        cfg = SimConfig(memory_fraction=0.01)
        assert cfg.resolve_capacity(seq_trace([1, 2])) == 1


class TestNoPrefetch:
    def test_cold_misses_only_when_memory_fits(self):
        trace = seq_trace([1, 2, 3, 1, 2, 3])
        result = simulate(trace, NullPrefetcher(), SimConfig(capacity_pages=8))
        assert result.demand_misses == 3

    def test_lru_thrash_when_cyclic_exceeds_capacity(self):
        # Cyclic access over N pages with capacity < N: LRU misses on every
        # access (the classic worst case).
        trace = seq_trace([0, 1, 2, 3] * 10)
        result = simulate(trace, NullPrefetcher(), SimConfig(capacity_pages=2))
        assert result.demand_misses == len(trace)

    def test_baseline_helper_matches_null(self):
        trace = seq_trace([0, 1, 2, 0, 1, 2])
        cfg = SimConfig(capacity_pages=2)
        assert (baseline_misses(trace, cfg).demand_misses
                == simulate(trace, NullPrefetcher(), cfg).demand_misses)


class TestPrefetching:
    def test_nextline_covers_sequential(self):
        trace = seq_trace(list(range(50)))
        cfg = SimConfig(capacity_pages=8)
        base = baseline_misses(trace, cfg)
        run = simulate(trace, NextLinePrefetcher(degree=1), cfg)
        assert run.demand_misses < base.demand_misses
        assert run.percent_misses_removed(base) > 40.0

    def test_oracle_beats_everything_on_random(self):
        trace = pointer_chase(PatternSpec(n=400, working_set=64,
                                          element_size=4096, seed=2))
        cfg = SimConfig(memory_fraction=0.5)
        base = baseline_misses(trace, cfg)
        oracle = OracleWindowPrefetcher(trace, degree=4)
        run = simulate(trace, oracle, cfg)
        assert run.percent_misses_removed(base) > 50.0

    def test_delay_degrades_nextline(self):
        trace = seq_trace(list(range(200)))
        timely = simulate(trace, NextLinePrefetcher(degree=1),
                          SimConfig(capacity_pages=8, prefetch_delay_accesses=0))
        late = simulate(trace, NextLinePrefetcher(degree=1),
                        SimConfig(capacity_pages=8, prefetch_delay_accesses=10))
        assert late.demand_misses > timely.demand_misses

    def test_max_prefetches_cap(self):
        class Flood:
            name = "flood"

            def on_miss(self, event):
                return list(range(event.page + 1, event.page + 1000))

        trace = seq_trace(list(range(20)))
        run = simulate(trace, Flood(),
                       SimConfig(capacity_pages=8, max_prefetches_per_miss=2))
        assert run.stats.prefetches_issued <= 2 * run.demand_misses

    def test_self_prefetch_filtered(self):
        class SelfPrefetch:
            name = "self"

            def on_miss(self, event):
                return [event.page]

        trace = seq_trace([1, 2, 3])
        run = simulate(trace, SelfPrefetch(), SimConfig(capacity_pages=8))
        assert run.stats.prefetches_issued == 0


class TestResultMetrics:
    def test_percent_misses_removed(self):
        trace = seq_trace(list(range(50)))
        cfg = SimConfig(capacity_pages=8)
        base = baseline_misses(trace, cfg)
        run = simulate(trace, NextLinePrefetcher(degree=2), cfg)
        expected = 100.0 * (base.demand_misses - run.demand_misses) / base.demand_misses
        assert run.percent_misses_removed(base) == pytest.approx(expected)

    def test_zero_baseline_safe(self):
        trace = seq_trace([1])
        cfg = SimConfig(capacity_pages=8)
        base = baseline_misses(trace, cfg)
        fake = simulate(trace, NullPrefetcher(), cfg)
        base.stats.demand_misses = 0
        assert fake.percent_misses_removed(base) == 0.0

    def test_record_miss_indices(self):
        trace = seq_trace([0, 1, 0, 1])
        run = simulate(trace, NullPrefetcher(), SimConfig(capacity_pages=8),
                       record_miss_indices=True)
        assert run.miss_indices == [0, 1]

    def test_stride_trace_end_to_end(self):
        trace = stride(PatternSpec(n=300, working_set=60, element_size=4096))
        cfg = SimConfig(memory_fraction=0.5)
        base = baseline_misses(trace, cfg)
        # cyclic stride over 60 pages with 30-page LRU thrashes
        assert base.demand_misses == len(trace)
