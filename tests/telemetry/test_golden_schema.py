"""Golden-schema regression test for the telemetry JSONL layout.

``fixtures/golden_run.jsonl`` is a pinned, committed run (pagerank,
n=5000, trace seed 5, CLS-hebbian seed 3, interval 1000).  The test
regenerates the identical run and compares every record field-for-field
against the fixture, masking only the declared-volatile fields
(``wall_time_s``, ``env``, summary ``timers``).  Any change to the
record layout — a renamed field, a new rate, a schema bump — fails here
until the fixture is deliberately regenerated:

    PYTHONPATH=src python -c "
    from tests.telemetry.test_golden_schema import regenerate
    regenerate()"
"""

from __future__ import annotations

import copy
import json
from pathlib import Path

from repro.core.cls_prefetcher import CLSPrefetcher, CLSPrefetcherConfig
from repro.memsim import SimConfig, simulate
from repro.patterns.applications import AppSpec, pagerank_graphchi
from repro.telemetry import SCHEMA_VERSION, Telemetry, load_run

FIXTURE = Path(__file__).parent / "fixtures" / "golden_run.jsonl"

#: Fields whose values depend on the host, not the run.
VOLATILE_MANIFEST = ("wall_time_s", "env")


def _golden_sink() -> Telemetry:
    trace = pagerank_graphchi(AppSpec(n=5000, seed=5))
    prefetcher = CLSPrefetcher(CLSPrefetcherConfig(
        model="hebbian", vocab_size=64, observe_hits=False, seed=3))
    sink = Telemetry(interval=1000)
    simulate(trace, prefetcher,
             SimConfig(memory_fraction=0.5, prefetch_delay_accesses=4),
             telemetry=sink)
    return sink


def regenerate() -> None:
    """Rewrite the fixture after a deliberate schema change."""
    sink = _golden_sink()
    path = sink.write(FIXTURE.parent)
    path.rename(FIXTURE)


def _stable(records: list[dict]) -> list[dict]:
    masked = copy.deepcopy(records)
    for field in VOLATILE_MANIFEST:
        masked[0].pop(field, None)
    masked[-1].pop("timers", None)
    return masked


def _fixture_records() -> list[dict]:
    with FIXTURE.open() as handle:
        return [json.loads(line) for line in handle]


def test_regenerated_run_matches_fixture_exactly():
    produced = _stable(_golden_sink().records())
    pinned = _stable(_fixture_records())
    assert len(produced) == len(pinned)
    for got, want in zip(produced, pinned):
        assert got == want, got.get("record")


def test_schema_version_bump_requires_fixture_regeneration():
    manifest = _fixture_records()[0]
    assert manifest["schema_version"] == SCHEMA_VERSION


def test_fixture_shape_and_volatile_fields_present():
    records = _fixture_records()
    manifest, *windows, summary = records
    assert manifest["record"] == "manifest"
    assert summary["record"] == "summary"
    assert len(windows) == manifest["n_windows"] == 5
    assert set(manifest["env"]) == {"backend", "git_sha", "numpy",
                                    "platform", "python"}
    assert isinstance(manifest["wall_time_s"], float)
    assert manifest["run_id"] == manifest["spec_hash"][:16]
    assert manifest["seed"] == 5
    for window in windows:
        assert window["record"] == "window"
        for rate in ("miss_rate", "accuracy", "coverage", "timeliness"):
            assert isinstance(window[rate], float)
        assert window["index_stop"] - window["index_start"] \
            == window["accesses"]
    assert "counters" in summary and "timers" in summary


def test_fixture_loads_through_report_reader():
    run = load_run(FIXTURE)
    assert run.manifest["spec"]["trace"] == "pagerank"
    assert len(run.windows) == 5
    assert run.summary["accesses"] == 5000
