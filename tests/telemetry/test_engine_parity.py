"""Differential suite: telemetry must never perturb the simulation.

Three claims, pinned across the four Figure 5 applications:

- **engine parity under observation** — the scalar and span-batched
  engines with an *enabled* sink produce identical ``CacheStats``,
  identical miss indices, and byte-identical windowed series (the
  segmented engines stop at the same boundaries, so every window delta
  agrees).
- **observation is free of side effects** — a run with telemetry ON is
  bit-identical to the same run with telemetry OFF: stats, miss indices,
  and every learned CLS weight array (``_probs_buf`` is excluded: it is
  write-before-read scratch and differs even between two identical
  unobserved runs).
- **fallback restarts are accounted** — when the null-replay engine
  bails out mid-run, the sink discards its partial windows, counts the
  restart, and the rewound scalar run's windows match a pure scalar run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cls_prefetcher import CLSPrefetcher, CLSPrefetcherConfig
from repro.memsim import NullPrefetcher, SimConfig, simulate
from repro.patterns.applications import (
    AppSpec,
    graph500,
    mcf,
    pagerank_graphchi,
    resnet_training,
)
from repro.patterns.trace import Trace
from repro.telemetry import Telemetry

APPS = {
    "resnet": resnet_training,
    "pagerank": pagerank_graphchi,
    "mcf": mcf,
    "graph500": graph500,
}

N = 20_000
INTERVAL = 1500  # deliberately not a divisor of N: last window is ragged


def _trace(app: str) -> Trace:
    return APPS[app](AppSpec(n=N, seed=1))


def _cls() -> CLSPrefetcher:
    return CLSPrefetcher(CLSPrefetcherConfig(
        model="hebbian", vocab_size=64, observe_hits=False, seed=3))


def _config() -> SimConfig:
    return SimConfig(memory_fraction=0.5, prefetch_delay_accesses=4)


def _weight_arrays(prefetcher: CLSPrefetcher) -> dict[str, np.ndarray]:
    """Every learned/stateful model array except write-only scratch."""
    return {name: value for name, value in vars(prefetcher.model).items()
            if isinstance(value, np.ndarray) and name != "_probs_buf"}


@pytest.mark.parametrize("app", sorted(APPS))
def test_windowed_series_identical_across_engines(app: str):
    trace = _trace(app)
    sink_b, sink_s = Telemetry(INTERVAL), Telemetry(INTERVAL)
    batched = simulate(trace, _cls(), _config(), record_miss_indices=True,
                       engine="batched", telemetry=sink_b)
    scalar = simulate(trace, _cls(), _config(), record_miss_indices=True,
                      engine="scalar", telemetry=sink_s)
    assert batched.stats.as_dict() == scalar.stats.as_dict()
    assert batched.miss_indices == scalar.miss_indices
    assert sink_b.windows == sink_s.windows
    assert sink_b.run_id() == sink_s.run_id()
    assert len(sink_b.windows) == -(-N // INTERVAL)
    assert sink_b.manifest()["engine"] == "batched"
    assert sink_s.manifest()["engine"] == "scalar"


@pytest.mark.parametrize("app", sorted(APPS))
@pytest.mark.parametrize("engine", ["scalar", "batched"])
def test_observation_is_bit_identical_to_unobserved(app: str, engine: str):
    trace = _trace(app)
    observed_pf, bare_pf = _cls(), _cls()
    sink = Telemetry(INTERVAL)
    observed = simulate(trace, observed_pf, _config(),
                        record_miss_indices=True, engine=engine,
                        telemetry=sink)
    bare = simulate(trace, bare_pf, _config(),
                    record_miss_indices=True, engine=engine)
    assert observed.stats.as_dict() == bare.stats.as_dict()
    assert observed.miss_indices == bare.miss_indices
    assert observed.capacity_pages == bare.capacity_pages
    observed_w, bare_w = _weight_arrays(observed_pf), _weight_arrays(bare_pf)
    assert observed_w.keys() == bare_w.keys()
    for name, array in observed_w.items():
        np.testing.assert_array_equal(array, bare_w[name], err_msg=name)
    # The sink really observed the run while changing nothing.
    assert sum(w["accesses"] for w in sink.windows) == N
    assert sum(w["demand_misses"] for w in sink.windows) \
        == bare.stats.demand_misses


@pytest.mark.parametrize("app", sorted(APPS))
def test_null_replay_engine_windows_match_scalar(app: str):
    trace = _trace(app)
    sink_b, sink_s = Telemetry(INTERVAL), Telemetry(INTERVAL)
    batched = simulate(trace, NullPrefetcher(), _config(),
                       record_miss_indices=True, engine="batched",
                       telemetry=sink_b)
    scalar = simulate(trace, NullPrefetcher(), _config(),
                      record_miss_indices=True, engine="scalar",
                      telemetry=sink_s)
    assert batched.stats.as_dict() == scalar.stats.as_dict()
    assert batched.miss_indices == scalar.miss_indices
    assert sink_b.windows == sink_s.windows


def test_fallback_restart_rewinds_windows():
    # A random-page trace defeats span batching: the null-replay engine
    # accumulates scalar fallbacks past its budget and restarts scalar.
    # Only the numpy backend has this failure mode (compiled backends
    # replay scattered misses at full speed and never bail), so pin it.
    rng = np.random.default_rng(7)
    addresses = rng.integers(0, 4_000, size=N).astype(np.int64) * 4096
    trace = Trace(name="uniform_random", addresses=addresses,
                  metadata={"seed": 7})
    sink_auto, sink_s = Telemetry(INTERVAL), Telemetry(INTERVAL)
    auto = simulate(trace, NullPrefetcher(), _config(),
                    record_miss_indices=True, backend="numpy",
                    telemetry=sink_auto)
    scalar = simulate(trace, NullPrefetcher(), _config(),
                      record_miss_indices=True, engine="scalar",
                      backend="numpy", telemetry=sink_s)
    assert sink_auto.counters.get("engine_fallback_restarts") == 1
    assert sink_auto.manifest()["engine"] == "scalar"
    assert auto.stats.as_dict() == scalar.stats.as_dict()
    assert auto.miss_indices == scalar.miss_indices
    # The partial pre-fallback windows were discarded, not double-counted.
    assert sink_auto.windows == sink_s.windows
