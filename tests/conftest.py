"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.hebbian import HebbianConfig, SparseHebbianNetwork
from repro.nn.lstm import LSTMConfig, OnlineLSTM
from repro.patterns.generators import PatternSpec


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_spec() -> PatternSpec:
    """A small pattern spec that keeps generator tests fast."""
    return PatternSpec(n=400, working_set=40, element_size=64, seed=7)


@pytest.fixture
def tiny_lstm() -> OnlineLSTM:
    """A tiny LSTM that trains in milliseconds."""
    return OnlineLSTM(LSTMConfig(vocab_size=16, embed_dim=8, hidden_dim=16,
                                 window=4, lr=1.0, seed=3))


@pytest.fixture
def tiny_hebbian() -> SparseHebbianNetwork:
    """A small Hebbian network with the paper's sparsity ratios."""
    return SparseHebbianNetwork(HebbianConfig(
        vocab_size=16, hidden_dim=200, connectivity_in=0.125,
        connectivity_rec=0.02, connectivity_out=0.125,
        activation_fraction=0.10, seed=3))
