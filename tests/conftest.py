"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.nn import backends
from repro.nn.hebbian import HebbianConfig, SparseHebbianNetwork
from repro.nn.lstm import LSTMConfig, OnlineLSTM
from repro.patterns.generators import PatternSpec


def _disable_compiled_backends() -> None:  # repro-lint: zone=init
    """Honor ``REPRO_DISABLE_COMPILED`` for the whole test session.

    ``REPRO_DISABLE_COMPILED=1`` forces every backend resolution to the
    pure-numpy reference even on machines with a working compiler or
    numba — the CI leg that proves a numpy-only install passes the full
    suite sets it.  A comma list (``REPRO_DISABLE_COMPILED=numba,c``)
    disables just those backends.

    Runs at conftest *import* (before any test module is collected):
    the cross-backend suites snapshot ``available_backends()`` into
    module-level parametrize lists, so the disable must land first.
    """
    raw = os.environ.get("REPRO_DISABLE_COMPILED", "").strip()
    if not raw:
        return
    names = (backends.SIM_BACKENDS if raw == "1"
             else tuple(n.strip() for n in raw.split(",") if n.strip()))
    backends._disabled.update(n for n in names if n != "numpy")


_disable_compiled_backends()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_spec() -> PatternSpec:
    """A small pattern spec that keeps generator tests fast."""
    return PatternSpec(n=400, working_set=40, element_size=64, seed=7)


@pytest.fixture
def tiny_lstm() -> OnlineLSTM:
    """A tiny LSTM that trains in milliseconds."""
    return OnlineLSTM(LSTMConfig(vocab_size=16, embed_dim=8, hidden_dim=16,
                                 window=4, lr=1.0, seed=3))


@pytest.fixture
def tiny_hebbian() -> SparseHebbianNetwork:
    """A small Hebbian network with the paper's sparsity ratios."""
    return SparseHebbianNetwork(HebbianConfig(
        vocab_size=16, hidden_dim=200, connectivity_in=0.125,
        connectivity_rec=0.02, connectivity_out=0.125,
        activation_fraction=0.10, seed=3))
