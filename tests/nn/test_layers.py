"""Tests for the nn building blocks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn.layers import SGD, cross_entropy, glorot, sigmoid, softmax


class TestSoftmax:
    def test_rows_sum_to_one(self):
        p = softmax(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]))
        np.testing.assert_allclose(p.sum(axis=-1), 1.0)

    def test_stable_for_large_logits(self):
        p = softmax(np.array([1e4, 1e4 + 1.0]))
        assert np.isfinite(p).all()
        assert p[1] > p[0]

    def test_shift_invariance(self):
        x = np.array([0.3, -1.2, 2.0])
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0))


class TestCrossEntropy:
    def test_perfect_prediction_near_zero(self):
        probs = np.array([[0.0, 1.0, 0.0]])
        assert cross_entropy(probs, np.array([1])) < 1e-9

    def test_uniform_is_log_k(self):
        probs = np.full((1, 4), 0.25)
        assert cross_entropy(probs, np.array([2])) == pytest.approx(np.log(4))

    def test_clips_zero_probability(self):
        probs = np.array([[1.0, 0.0]])
        assert np.isfinite(cross_entropy(probs, np.array([1])))


class TestSigmoid:
    def test_range_and_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)
        x = np.linspace(-100, 100, 41)
        y = sigmoid(x)
        assert ((y >= 0) & (y <= 1)).all()

    def test_no_overflow_at_extremes(self):
        assert np.isfinite(sigmoid(np.array([-1e6, 1e6]))).all()


class TestGlorot:
    def test_shape_and_bounds(self):
        w = glorot(np.random.default_rng(0), 30, 50)
        assert w.shape == (30, 50)
        limit = np.sqrt(6.0 / 80)
        assert np.abs(w).max() <= limit


class TestSGD:
    def test_basic_update(self):
        params = {"w": np.array([1.0, 2.0])}
        opt = SGD(lr=0.5, clip_norm=0.0)
        opt.apply(params, {"w": np.array([1.0, 1.0])})
        np.testing.assert_allclose(params["w"], [0.5, 1.5])

    def test_lr_scale(self):
        params = {"w": np.array([1.0])}
        SGD(lr=1.0, clip_norm=0.0).apply(params, {"w": np.array([1.0])},
                                         lr_scale=0.1)
        assert params["w"][0] == pytest.approx(0.9)

    def test_clipping_bounds_step(self):
        params = {"w": np.zeros(4)}
        opt = SGD(lr=1.0, clip_norm=1.0)
        opt.apply(params, {"w": np.full(4, 100.0)})
        assert np.linalg.norm(params["w"]) <= 1.0 + 1e-9

    def test_counts_steps(self):
        opt = SGD()
        params = {"w": np.zeros(1)}
        opt.apply(params, {"w": np.zeros(1)})
        opt.apply(params, {"w": np.zeros(1)})
        assert opt.steps == 2


@settings(max_examples=40, deadline=None)
@given(logits=arrays(np.float64, (5,),
                     elements=st.floats(-50, 50, allow_nan=False)))
def test_property_softmax_is_distribution(logits):
    p = softmax(logits)
    assert p.sum() == pytest.approx(1.0)
    assert (p >= 0).all()
    # ties can resolve to different indices; the max logit's probability
    # must still be the max probability
    assert p[logits.argmax()] == pytest.approx(float(p.max()))
