"""Bit-exactness of the sparse Hebbian kernels against the dense reference.

The CSR-style kernels in ``repro.nn.hebbian`` must reproduce the dense
masked-array implementation (``repro.nn.hebbian_reference``) exactly:
same ``step()`` probabilities, same learned weights, same recurrent
trajectory — over long random sequences, in both input modes, and across
``clone()`` round-trips.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.nn.backends import available_backends
from repro.nn.hebbian import HebbianConfig, SparseHebbianNetwork
from repro.nn.hebbian_reference import DenseHebbianReference

N_STEPS = 1000

#: PR 6: the dense-reference equivalence must hold for every available
#: backend, not just the numpy kernels ("int8" is excluded by design —
#: it is accuracy-bounded, not bit-identical; see tests/nn/test_backends).
BACKENDS = ["numpy"] + [b for b in available_backends("nn")
                        if b not in ("numpy", "int8")]


def _configs() -> dict[str, HebbianConfig]:
    return {
        "onehot": HebbianConfig(vocab_size=64, hidden_dim=300,
                                input_mode="onehot", seed=11),
        "signature": HebbianConfig(vocab_size=64, hidden_dim=300,
                                   input_mode="signature",
                                   recurrent_strength=0.1, seed=11),
    }


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("mode", ["onehot", "signature"])
def test_step_probs_bit_identical(mode, backend):
    config = dataclasses.replace(_configs()[mode], backend=backend)
    fast = SparseHebbianNetwork(config)
    ref = DenseHebbianReference(config)
    rng = np.random.default_rng(99)
    sequence = rng.integers(0, config.vocab_size, size=N_STEPS)
    for i, class_id in enumerate(sequence):
        p_fast = fast.step(int(class_id))
        p_ref = ref.step(int(class_id))
        assert np.array_equal(p_fast, p_ref), f"probs diverged at step {i}"
    np.testing.assert_array_equal(fast.w_out, ref.w_out)
    assert fast.train_steps == ref.train_steps


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("mode", ["onehot", "signature"])
def test_clone_round_trip(mode, backend):
    """A clone taken mid-stream matches both its source and the reference."""
    config = dataclasses.replace(_configs()[mode], backend=backend)
    fast = SparseHebbianNetwork(config)
    ref = DenseHebbianReference(config)
    rng = np.random.default_rng(7)
    warmup = rng.integers(0, config.vocab_size, size=200)
    for class_id in warmup:
        fast.step(int(class_id))
        ref.step(int(class_id))

    twin = fast.clone()
    assert twin is not fast
    np.testing.assert_array_equal(twin.w_out, fast.w_out)
    assert twin.w_out is not fast.w_out

    tail = rng.integers(0, config.vocab_size, size=200)
    for class_id in tail:
        p_twin = twin.step(int(class_id))
        p_fast = fast.step(int(class_id))
        p_ref = ref.step(int(class_id))
        assert np.array_equal(p_twin, p_fast)
        assert np.array_equal(p_fast, p_ref)

    # Training the twin further must not leak back into the source.
    before = fast.w_out.copy()
    for class_id in warmup[:50]:
        twin.step(int(class_id))
    np.testing.assert_array_equal(fast.w_out, before)


@pytest.mark.parametrize("backend", BACKENDS)
def test_train_pair_bit_identical(backend):
    config = dataclasses.replace(_configs()["onehot"], backend=backend)
    fast = SparseHebbianNetwork(config)
    ref = DenseHebbianReference(config)
    rng = np.random.default_rng(3)
    pairs = rng.integers(0, config.vocab_size, size=(300, 2))
    for a, b in pairs:
        conf_fast = fast.train_pair(int(a), int(b), lr_scale=0.1)
        conf_ref = ref.train_pair(int(a), int(b), lr_scale=0.1)
        assert conf_fast == conf_ref
    np.testing.assert_array_equal(fast.w_out, ref.w_out)


def test_rollout_matches_reference_on_learned_cycle():
    """Rollout follows the same greedy path once transitions are learned
    (top-k selection is shared; only tie handling on untrained scores may
    legitimately differ between argsort and argpartition)."""
    config = _configs()["onehot"]
    fast = SparseHebbianNetwork(config)
    ref = DenseHebbianReference(config)
    cycle = [1, 9, 4, 17, 30, 2]
    for _ in range(80):
        for c in cycle:
            fast.step(c)
            ref.step(c)
    for width, length in ((3, 4), (2, 3), (1, 2)):
        assert (fast.predict_rollout(width=width, length=length)
                == ref.predict_rollout(width=width, length=length))


def test_rollout_fused_first_step_matches_recompute():
    """The fused path (reusing step()'s softmax) equals recomputing it.

    ``predict_rollout`` normally reuses the probabilities ``step()`` just
    produced for the frozen ``_last_scores``; clearing the memo forces
    the unfused recompute, which must agree bit for bit — including
    after training mutates the weights in between (the rollout's first
    step is defined over the frozen scores, not the live weights).
    """
    config = _configs()["onehot"]
    net = SparseHebbianNetwork(config)
    rng = np.random.default_rng(21)
    for class_id in rng.integers(0, config.vocab_size, size=300):
        net.step(int(class_id))
    fused = net.predict_rollout(width=2, length=3)
    net._last_probs = None  # drop the memo: recompute from _last_scores
    assert net.predict_rollout(width=2, length=3) == fused

    # Only the first step is frozen; later steps read the live weights
    # (in both paths), so compare length=1 across a weight mutation.
    net.step(5)
    fused = net.predict_rollout(width=2, length=1)
    net.train_pairs([(9, 30), (4, 17)], lr_scale=0.1)  # mutate weights
    net._last_probs = None
    assert net.predict_rollout(width=2, length=1) == fused


def test_rollout_width2_matches_general_topk():
    """The scalar width-2 branch equals the general argpartition branch,
    including on exact ties (both reduce to the same stable insertion
    sort of two elements)."""
    config = _configs()["onehot"]
    net = SparseHebbianNetwork(config)

    def general_topk(probs, width):
        part = probs.argpartition(-width)[-width:]
        vals = probs[part]
        order = vals.argsort()[::-1]
        return list(zip(part[order].tolist(), vals[order].tolist()))

    # Untrained: every score is 0, probabilities are uniform — all ties.
    probs = net.step(0, train=False)
    assert net.predict_rollout(width=2, length=1) == [general_topk(probs, 2)]

    rng = np.random.default_rng(5)
    for class_id in rng.integers(0, config.vocab_size, size=400):
        net.step(int(class_id))
    probs = net.step(3)
    assert net.predict_rollout(width=2, length=1) == [general_topk(probs, 2)]


def test_sparse_readout_matches_dense_row_sum():
    """bincount-over-connected-entries == dense row sum, bit for bit,
    for both cache-resident codes and foreign (caller-supplied) codes."""
    config = _configs()["onehot"]
    net = SparseHebbianNetwork(config)
    rng = np.random.default_rng(13)
    for class_id in rng.integers(0, config.vocab_size, size=500):
        net.step(int(class_id))
    for class_id in range(0, config.vocab_size, 7):
        active = net.hidden_code(class_id)
        dense = np.add.reduce(net.w_out.take(active, axis=0), axis=0)
        np.testing.assert_array_equal(net.readout(active), dense)
    # A code the cache has never seen takes the dense fallback.
    foreign = rng.choice(config.hidden_dim, size=30, replace=False)
    dense = np.add.reduce(net.w_out.take(foreign, axis=0), axis=0)
    np.testing.assert_array_equal(net.readout(foreign), dense)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("punish_wrong", [False, True])
@pytest.mark.parametrize("batch", [
    [(3, 9)],                                  # single pair
    [(3, 9), (9, 4), (4, 17), (17, 30)],       # distinct targets: vectorized
    [(3, 9), (9, 4), (4, 9), (17, 30)],        # duplicate target: fallback
])
def test_train_pairs_matches_per_pair_loop(punish_wrong, batch, backend):
    config = HebbianConfig(vocab_size=64, hidden_dim=300, seed=11,
                           punish_wrong=punish_wrong, backend=backend)
    batched = SparseHebbianNetwork(config)
    looped = SparseHebbianNetwork(config)
    ref = DenseHebbianReference(config)
    rng = np.random.default_rng(41)
    warmup = rng.integers(0, config.vocab_size, size=200)
    for class_id in warmup:
        batched.step(int(class_id))
        looped.step(int(class_id))
        ref.step(int(class_id))

    for _ in range(3):  # repeat: the second round hits the delta cache
        batched.train_pairs(batch, lr_scale=0.1)
        for input_class, target_class in batch:
            looped.train_pair(input_class, target_class, lr_scale=0.1)
            ref.train_pair(input_class, target_class, lr_scale=0.1)
    np.testing.assert_array_equal(batched.w_out, looped.w_out)
    np.testing.assert_array_equal(batched.w_out, ref.w_out)
