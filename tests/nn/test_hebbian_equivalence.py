"""Bit-exactness of the sparse Hebbian kernels against the dense reference.

The CSR-style kernels in ``repro.nn.hebbian`` must reproduce the dense
masked-array implementation (``repro.nn.hebbian_reference``) exactly:
same ``step()`` probabilities, same learned weights, same recurrent
trajectory — over long random sequences, in both input modes, and across
``clone()`` round-trips.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.hebbian import HebbianConfig, SparseHebbianNetwork
from repro.nn.hebbian_reference import DenseHebbianReference

N_STEPS = 1000


def _configs() -> dict[str, HebbianConfig]:
    return {
        "onehot": HebbianConfig(vocab_size=64, hidden_dim=300,
                                input_mode="onehot", seed=11),
        "signature": HebbianConfig(vocab_size=64, hidden_dim=300,
                                   input_mode="signature",
                                   recurrent_strength=0.1, seed=11),
    }


@pytest.mark.parametrize("mode", ["onehot", "signature"])
def test_step_probs_bit_identical(mode):
    config = _configs()[mode]
    fast = SparseHebbianNetwork(config)
    ref = DenseHebbianReference(config)
    rng = np.random.default_rng(99)
    sequence = rng.integers(0, config.vocab_size, size=N_STEPS)
    for i, class_id in enumerate(sequence):
        p_fast = fast.step(int(class_id))
        p_ref = ref.step(int(class_id))
        assert np.array_equal(p_fast, p_ref), f"probs diverged at step {i}"
    np.testing.assert_array_equal(fast.w_out, ref.w_out)
    assert fast.train_steps == ref.train_steps


@pytest.mark.parametrize("mode", ["onehot", "signature"])
def test_clone_round_trip(mode):
    """A clone taken mid-stream matches both its source and the reference."""
    config = _configs()[mode]
    fast = SparseHebbianNetwork(config)
    ref = DenseHebbianReference(config)
    rng = np.random.default_rng(7)
    warmup = rng.integers(0, config.vocab_size, size=200)
    for class_id in warmup:
        fast.step(int(class_id))
        ref.step(int(class_id))

    twin = fast.clone()
    assert twin is not fast
    np.testing.assert_array_equal(twin.w_out, fast.w_out)
    assert twin.w_out is not fast.w_out

    tail = rng.integers(0, config.vocab_size, size=200)
    for class_id in tail:
        p_twin = twin.step(int(class_id))
        p_fast = fast.step(int(class_id))
        p_ref = ref.step(int(class_id))
        assert np.array_equal(p_twin, p_fast)
        assert np.array_equal(p_fast, p_ref)

    # Training the twin further must not leak back into the source.
    before = fast.w_out.copy()
    for class_id in warmup[:50]:
        twin.step(int(class_id))
    np.testing.assert_array_equal(fast.w_out, before)


def test_train_pair_bit_identical():
    config = _configs()["onehot"]
    fast = SparseHebbianNetwork(config)
    ref = DenseHebbianReference(config)
    rng = np.random.default_rng(3)
    pairs = rng.integers(0, config.vocab_size, size=(300, 2))
    for a, b in pairs:
        conf_fast = fast.train_pair(int(a), int(b), lr_scale=0.1)
        conf_ref = ref.train_pair(int(a), int(b), lr_scale=0.1)
        assert conf_fast == conf_ref
    np.testing.assert_array_equal(fast.w_out, ref.w_out)


def test_rollout_matches_reference_on_learned_cycle():
    """Rollout follows the same greedy path once transitions are learned
    (top-k selection is shared; only tie handling on untrained scores may
    legitimately differ between argsort and argpartition)."""
    config = _configs()["onehot"]
    fast = SparseHebbianNetwork(config)
    ref = DenseHebbianReference(config)
    cycle = [1, 9, 4, 17, 30, 2]
    for _ in range(80):
        for c in cycle:
            fast.step(c)
            ref.step(c)
    r_fast = fast.predict_rollout(width=3, length=4)
    r_ref = ref.predict_rollout(width=3, length=4)
    assert r_fast == r_ref
