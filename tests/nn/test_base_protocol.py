"""Protocol conformance: both model families honour SequenceModel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.base import SequenceModel, evaluate_sequence_probs
from repro.nn.hebbian import HebbianConfig, SparseHebbianNetwork
from repro.nn.lstm import LSTMConfig, OnlineLSTM


def models():
    return [
        ("hebbian", SparseHebbianNetwork(HebbianConfig(
            vocab_size=12, hidden_dim=150, seed=0))),
        ("lstm", OnlineLSTM(LSTMConfig(vocab_size=12, embed_dim=8,
                                       hidden_dim=12, window=2, lr=1.0,
                                       seed=0))),
    ]


@pytest.mark.parametrize("name,model", models())
class TestSequenceModelConformance:
    def test_satisfies_protocol(self, name, model):
        assert isinstance(model, SequenceModel)
        assert model.vocab_size == 12

    def test_step_returns_distribution(self, name, model):
        probs = model.step(3)
        assert probs.shape == (12,)
        assert probs.sum() == pytest.approx(1.0)

    def test_train_pair_returns_probability(self, name, model):
        confidence = model.train_pair(1, 2)
        assert 0.0 <= confidence <= 1.0

    def test_clone_type_preserved(self, name, model):
        twin = model.clone()
        assert type(twin) is type(model)

    def test_rollout_structure(self, name, model):
        model.step(1, train=False)
        rollout = model.predict_rollout(width=3, length=2)
        assert len(rollout) == 2
        for step in rollout:
            assert len(step) == 3
            for class_id, probability in step:
                assert 0 <= class_id < 12
                assert 0.0 <= probability <= 1.0

    def test_reset_then_evaluate(self, name, model):
        for _ in range(30):
            model.step(5)
        model.reset_state()
        assert 0.0 <= model.evaluate_sequence([5] * 10) <= 1.0

    def test_evaluate_sequence_probs_helper(self, name, model):
        for _ in range(40):
            model.step(5)
        probs = evaluate_sequence_probs(model, [5, 5, 5, 5])
        assert probs.shape == (3,)
        assert np.isfinite(probs).all()

    def test_evaluate_short_sequence_empty(self, name, model):
        assert evaluate_sequence_probs(model, [1]).size == 0
