"""Tests for the signature (multi-bit hashed) Hebbian input mode (§5.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.costs import hebbian_inference_ops, hebbian_parameter_count
from repro.nn.hebbian import HebbianConfig, SparseHebbianNetwork


def sig_config(vocab: int = 64, **overrides) -> HebbianConfig:
    defaults = dict(vocab_size=vocab, hidden_dim=300, input_mode="signature",
                    signature_dim=128, signature_k=8,
                    recurrent_strength=0.1, seed=0)
    defaults.update(overrides)
    return HebbianConfig(**defaults)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            HebbianConfig(input_mode="dense")
        with pytest.raises(ValueError):
            HebbianConfig(input_mode="signature", signature_k=0)
        with pytest.raises(ValueError):
            HebbianConfig(input_mode="signature", signature_k=300,
                          signature_dim=128)


class TestSignatureCodes:
    def test_codes_are_class_specific(self):
        net = SparseHebbianNetwork(sig_config())
        a = set(net.hidden_code(1).tolist())
        b = set(net.hidden_code(2).tolist())
        assert len(a & b) / len(a) < 0.4  # pattern separation survives

    def test_codes_deterministic(self):
        net = SparseHebbianNetwork(sig_config())
        np.testing.assert_array_equal(np.sort(net.hidden_code(5)),
                                      np.sort(net.hidden_code(5)))

    def test_clone_reproduces_signatures(self):
        net = SparseHebbianNetwork(sig_config())
        twin = net.clone()
        np.testing.assert_array_equal(net._signatures, twin._signatures)


class TestLearning:
    def test_learns_cycle(self):
        net = SparseHebbianNetwork(sig_config())
        cycle = [1, 4, 2, 7, 5, 3]
        for _ in range(80):
            for c in cycle:
                net.step(c)
        assert net.evaluate_sequence(cycle * 5) > 0.6

    def test_large_vocab_learnable(self):
        rng = np.random.default_rng(2)
        perm = [int(x) for x in rng.permutation(100)]
        net = SparseHebbianNetwork(sig_config(vocab=4096, hidden_dim=500,
                                              signature_dim=256))
        for _ in range(12):
            for c in perm:
                net.step(c)
        assert net.evaluate_sequence(perm * 2) > 0.3

    def test_plastic_hidden_runs(self):
        net = SparseHebbianNetwork(sig_config(plastic_hidden=True))
        before = net.w_in.sum()
        for _ in range(40):
            net.step(3)
        assert net.w_in.sum() > before


class TestResourceScaling:
    def test_input_layer_vocab_independent(self):
        """§5.3's point: one-hot input weights grow with the vocabulary,
        signature input weights do not."""
        small_sig = hebbian_parameter_count(sig_config(vocab=128,
                                                       hidden_dim=500,
                                                       signature_dim=256))
        large_sig = hebbian_parameter_count(sig_config(vocab=4096,
                                                       hidden_dim=500,
                                                       signature_dim=256))
        small_hot = hebbian_parameter_count(HebbianConfig(vocab_size=128,
                                                          hidden_dim=500))
        large_hot = hebbian_parameter_count(HebbianConfig(vocab_size=4096,
                                                          hidden_dim=500))
        # one-hot params balloon with vocab; signature growth is only the
        # (unavoidable) output layer
        hot_growth = large_hot - small_hot
        sig_growth = large_sig - small_sig
        assert sig_growth < 0.55 * hot_growth
        # and the realized networks match the analytic counts (binomial)
        net = SparseHebbianNetwork(sig_config(vocab=4096, hidden_dim=500,
                                              signature_dim=256))
        assert net.parameter_count == pytest.approx(large_sig, rel=0.05)

    def test_inference_ops_count_active_bits(self):
        onehot = hebbian_inference_ops(HebbianConfig())
        signature = hebbian_inference_ops(sig_config(vocab=128,
                                                     hidden_dim=1000,
                                                     signature_dim=256))
        assert signature.int_ops > onehot.int_ops  # k active bits fan out
