"""Behavioural tests for the sparse Hebbian network."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.hebbian import HebbianConfig, SparseHebbianNetwork


class TestConfig:
    def test_rejects_bad_activation(self):
        with pytest.raises(ValueError):
            HebbianConfig(activation_fraction=0.0)

    def test_rejects_bad_connectivity(self):
        with pytest.raises(ValueError):
            HebbianConfig(connectivity_in=1.5)

    def test_k_winners(self):
        assert HebbianConfig(hidden_dim=1000, activation_fraction=0.1).k_winners == 100

    def test_paper_parameter_count(self):
        net = SparseHebbianNetwork(HebbianConfig(seed=0))
        # Table 2: 49k connected weights (49k expected, binomial sampling)
        assert 46_000 <= net.parameter_count <= 52_000


class TestHiddenCode:
    def test_exactly_k_active(self, tiny_hebbian):
        code = tiny_hebbian.hidden_code(3)
        assert len(code) == tiny_hebbian.config.k_winners

    def test_deterministic_without_context(self, tiny_hebbian):
        a = np.sort(tiny_hebbian.hidden_code(3))
        b = np.sort(tiny_hebbian.hidden_code(3))
        np.testing.assert_array_equal(a, b)

    def test_pattern_separation(self, tiny_hebbian):
        """Distinct classes map to nearly disjoint codes."""
        a = set(tiny_hebbian.hidden_code(1).tolist())
        b = set(tiny_hebbian.hidden_code(2).tolist())
        overlap = len(a & b) / len(a)
        assert overlap < 0.5

    def test_context_stays_within_input_support(self, tiny_hebbian):
        """Recurrent context reorders winners but codes for one class
        still overlap heavily (input gain dominates)."""
        bare = set(tiny_hebbian.hidden_code(1).tolist())
        ctx = tiny_hebbian.hidden_code(2)
        contextual = set(tiny_hebbian.hidden_code(1, prev_active=ctx).tolist())
        overlap = len(bare & contextual) / len(bare)
        assert overlap > 0.5


class TestLearning:
    def test_learns_constant(self, tiny_hebbian):
        for _ in range(60):
            tiny_hebbian.step(3)
        assert tiny_hebbian.evaluate_sequence([3] * 20) > 0.8

    def test_learns_cycle(self, tiny_hebbian):
        cycle = [1, 4, 2, 7, 5, 3]
        for _ in range(60):
            for c in cycle:
                tiny_hebbian.step(c)
        assert tiny_hebbian.evaluate_sequence(cycle * 5) > 0.8

    def test_weights_clipped(self, tiny_hebbian):
        for _ in range(500):
            tiny_hebbian.step(3)
        w_max = tiny_hebbian.config.weight_max
        assert np.abs(tiny_hebbian.w_out).max() <= w_max + 1e-9

    def test_updates_respect_output_mask(self, tiny_hebbian):
        for _ in range(100):
            tiny_hebbian.step(2)
        assert np.all(tiny_hebbian.w_out[~tiny_hebbian.mask_out] == 0.0)

    def test_no_training_when_disabled(self, tiny_hebbian):
        for _ in range(20):
            tiny_hebbian.step(2, train=False)
        assert np.all(tiny_hebbian.w_out == 0.0)
        assert tiny_hebbian.train_steps == 0

    def test_lr_scale_slows_learning(self):
        cfg = HebbianConfig(vocab_size=16, hidden_dim=200, seed=3)
        fast = SparseHebbianNetwork(cfg)
        slow = SparseHebbianNetwork(cfg)
        for _ in range(10):
            fast.step(2, lr_scale=1.0)
            slow.step(2, lr_scale=0.1)
        assert np.abs(fast.w_out).sum() > np.abs(slow.w_out).sum()

    def test_relearning_overwrites(self, tiny_hebbian):
        """The same context mapped to a new target eventually flips."""
        for _ in range(40):
            tiny_hebbian.train_pair(1, 2)
        for _ in range(120):
            tiny_hebbian.train_pair(1, 3)
        probs = tiny_hebbian.probabilities(
            tiny_hebbian.readout(tiny_hebbian.hidden_code(1)))
        assert probs[3] > probs[2]

    def test_plastic_hidden_strengthens_input_weights(self):
        cfg = HebbianConfig(vocab_size=16, hidden_dim=200, plastic_hidden=True,
                            seed=3)
        net = SparseHebbianNetwork(cfg)
        before = net.w_in.sum()
        for _ in range(50):
            net.step(2)
        assert net.w_in.sum() > before

    def test_rejects_out_of_vocab(self, tiny_hebbian):
        with pytest.raises(ValueError):
            tiny_hebbian.step(99)


class TestRollout:
    def test_empty_before_first_step(self, tiny_hebbian):
        assert tiny_hebbian.predict_rollout() == []

    def test_rollout_follows_learned_cycle(self, tiny_hebbian):
        cycle = [1, 4, 2, 7]
        for _ in range(80):
            for c in cycle:
                tiny_hebbian.step(c)
        tiny_hebbian.reset_state()
        tiny_hebbian.step(1, train=False)
        rollout = tiny_hebbian.predict_rollout(width=1, length=3)
        assert [s[0][0] for s in rollout] == [4, 2, 7]

    def test_width_and_order(self, tiny_hebbian):
        tiny_hebbian.step(1, train=False)
        rollout = tiny_hebbian.predict_rollout(width=4, length=2)
        for step in rollout:
            probs = [p for _, p in step]
            assert probs == sorted(probs, reverse=True)
            assert len(step) == 4


class TestCloneAndEval:
    def test_clone_independent(self, tiny_hebbian):
        for _ in range(60):
            tiny_hebbian.step(2)
        twin = tiny_hebbian.clone()
        for _ in range(60):
            twin.step(7)
        assert tiny_hebbian.evaluate_sequence([2] * 10) > 0.8

    def test_evaluate_does_not_train(self, tiny_hebbian):
        for _ in range(30):
            tiny_hebbian.step(2)
        w = tiny_hebbian.w_out.copy()
        tiny_hebbian.evaluate_sequence([1, 2, 3] * 4)
        np.testing.assert_array_equal(tiny_hebbian.w_out, w)


@settings(max_examples=20, deadline=None)
@given(class_id=st.integers(0, 15), ctx_class=st.integers(0, 15))
def test_property_kwta_always_exact(class_id, ctx_class):
    net = SparseHebbianNetwork(HebbianConfig(vocab_size=16, hidden_dim=100,
                                             seed=1))
    ctx = net.hidden_code(ctx_class)
    code = net.hidden_code(class_id, prev_active=ctx)
    assert len(code) == net.config.k_winners
    assert len(set(code.tolist())) == net.config.k_winners
