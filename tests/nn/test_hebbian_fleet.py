"""Per-lane bit-identity of the tenant-axis batched Hebbian fleet.

A :class:`repro.nn.hebbian_fleet.HebbianFleet` stepping T class streams
must reproduce T independent clones of the prototype stepping the same
streams — identical probabilities every step, identical learned weights
at the end, and a materialized ``lane_network`` must continue its lane
bit-identically — on every float backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.backends import available_backends
from repro.nn.hebbian import HebbianConfig, SparseHebbianNetwork
from repro.nn.hebbian_fleet import HebbianFleet
from repro.seeding import child_rng

#: int8 serves from a quantized mirror the fleet deliberately rejects.
BACKENDS = [b for b in available_backends("nn") if b != "int8"]

N_LANES = 5
VOCAB = 48
ROUNDS = 160


def _prototype(backend: str, *, punish: bool = True,
               pretrain: int = 40) -> SparseHebbianNetwork:
    net = SparseHebbianNetwork(HebbianConfig(
        vocab_size=VOCAB, hidden_dim=240, punish_wrong=punish, seed=11,
        backend=backend))
    rng = child_rng(30480, 0)
    for _ in range(pretrain):
        net.step(int(rng.integers(0, VOCAB)))
    net.reset_state()
    return net


def _streams(seed_stream: int) -> np.ndarray:
    rng = child_rng(30481, seed_stream)
    # Skewed per-lane streams: lane t cycles mostly within its own band
    # so transitions repeat (exercising the shared memo) but lanes learn
    # different weights.
    base = rng.integers(0, VOCAB, size=(ROUNDS, N_LANES))
    band = (np.arange(N_LANES) * 7) % VOCAB
    mix = rng.integers(0, 4, size=(ROUNDS, N_LANES)) > 0
    return np.where(mix, (base % 11) + band[None, :], base) % VOCAB


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("punish", [True, False])
def test_fleet_matches_independent_clones(backend: str,
                                          punish: bool) -> None:
    proto = _prototype(backend, punish=punish)
    fleet = HebbianFleet(proto, N_LANES)
    clones = [proto.clone() for _ in range(N_LANES)]
    streams = _streams(0)
    for step in range(ROUNDS):
        probs = fleet.step_all(streams[step])
        for t, clone in enumerate(clones):
            want = clone.step(int(streams[step, t]))
            assert np.array_equal(probs[t], want), (backend, step, t)
    for t, clone in enumerate(clones):
        assert np.array_equal(fleet.w_out[t], clone.w_out), (backend, t)
        assert int(fleet.train_steps[t]) == clone.train_steps


@pytest.mark.parametrize("backend", BACKENDS)
def test_lane_network_continues_bit_identically(backend: str) -> None:
    proto = _prototype(backend)
    fleet = HebbianFleet(proto, N_LANES)
    clones = [proto.clone() for _ in range(N_LANES)]
    streams = _streams(1)
    half = ROUNDS // 2
    for step in range(half):
        fleet.step_all(streams[step])
        for t, clone in enumerate(clones):
            clone.step(int(streams[step, t]))
    for t, clone in enumerate(clones):
        lane = fleet.lane_network(t)
        assert np.array_equal(lane.w_out, clone.w_out)
        for step in range(half, ROUNDS):
            got = lane.step(int(streams[step, t]))
            want = clone.step(int(streams[step, t]))
            assert np.array_equal(got, want), (backend, step, t)


def test_fleet_starts_from_prototype_weights() -> None:
    proto = _prototype("numpy")
    fleet = HebbianFleet(proto, 3)
    for t in range(3):
        assert np.array_equal(fleet.w_out[t], proto.w_out)
    # Lane weights are copies: learning must not write back.
    fleet.step_all([0, 1, 2])
    fleet.step_all([1, 2, 3])
    assert np.array_equal(proto.w_out,
                          _prototype("numpy").w_out)


def test_rejects_unsupported_prototypes() -> None:
    plastic = SparseHebbianNetwork(HebbianConfig(
        vocab_size=16, hidden_dim=64, plastic_hidden=True,
        backend="numpy"))
    with pytest.raises(ValueError, match="plastic_hidden"):
        HebbianFleet(plastic, 2)
    int8 = SparseHebbianNetwork(HebbianConfig(
        vocab_size=16, hidden_dim=64, backend="int8"))
    with pytest.raises(ValueError, match="int8"):
        HebbianFleet(int8, 2)
    with pytest.raises(ValueError, match="positive"):
        HebbianFleet(_prototype("numpy", pretrain=0), 0)


def test_rollout_from_lane_network_matches() -> None:
    """predict_rollout on a materialized lane equals the clone's."""
    proto = _prototype("numpy")
    fleet = HebbianFleet(proto, 2)
    clones = [proto.clone() for _ in range(2)]
    streams = _streams(2)
    for step in range(60):
        fleet.step_all(streams[step, :2])
        for t, clone in enumerate(clones):
            clone.step(int(streams[step, t]))
    for t, clone in enumerate(clones):
        lane = fleet.lane_network(t)
        assert lane.predict_rollout(width=2, length=3) == \
            clone.predict_rollout(width=2, length=3)
