"""Per-lane bit-identity of the tenant-axis batched Hebbian fleet.

A :class:`repro.nn.hebbian_fleet.HebbianFleet` stepping T class streams
must reproduce T independent clones of the prototype stepping the same
streams — identical probabilities every step, identical learned weights
at the end, and a materialized ``lane_network`` must continue its lane
bit-identically — on every float backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.backends import available_backends
from repro.nn.hebbian import HebbianConfig, SparseHebbianNetwork
from repro.nn.hebbian_fleet import HebbianFleet
from repro.seeding import child_rng

#: int8 serves from a quantized mirror the fleet deliberately rejects.
BACKENDS = [b for b in available_backends("nn") if b != "int8"]

N_LANES = 5
VOCAB = 48
ROUNDS = 160


def _prototype(backend: str, *, punish: bool = True,
               pretrain: int = 40) -> SparseHebbianNetwork:
    net = SparseHebbianNetwork(HebbianConfig(
        vocab_size=VOCAB, hidden_dim=240, punish_wrong=punish, seed=11,
        backend=backend))
    rng = child_rng(30480, 0)
    for _ in range(pretrain):
        net.step(int(rng.integers(0, VOCAB)))
    net.reset_state()
    return net


def _streams(seed_stream: int) -> np.ndarray:
    rng = child_rng(30481, seed_stream)
    # Skewed per-lane streams: lane t cycles mostly within its own band
    # so transitions repeat (exercising the shared memo) but lanes learn
    # different weights.
    base = rng.integers(0, VOCAB, size=(ROUNDS, N_LANES))
    band = (np.arange(N_LANES) * 7) % VOCAB
    mix = rng.integers(0, 4, size=(ROUNDS, N_LANES)) > 0
    return np.where(mix, (base % 11) + band[None, :], base) % VOCAB


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("punish", [True, False])
def test_fleet_matches_independent_clones(backend: str,
                                          punish: bool) -> None:
    proto = _prototype(backend, punish=punish)
    fleet = HebbianFleet(proto, N_LANES)
    clones = [proto.clone() for _ in range(N_LANES)]
    streams = _streams(0)
    for step in range(ROUNDS):
        probs = fleet.step_all(streams[step])
        for t, clone in enumerate(clones):
            want = clone.step(int(streams[step, t]))
            assert np.array_equal(probs[t], want), (backend, step, t)
    for t, clone in enumerate(clones):
        assert np.array_equal(fleet.w_out[t], clone.w_out), (backend, t)
        assert int(fleet.train_steps[t]) == clone.train_steps


@pytest.mark.parametrize("backend", BACKENDS)
def test_lane_network_continues_bit_identically(backend: str) -> None:
    proto = _prototype(backend)
    fleet = HebbianFleet(proto, N_LANES)
    clones = [proto.clone() for _ in range(N_LANES)]
    streams = _streams(1)
    half = ROUNDS // 2
    for step in range(half):
        fleet.step_all(streams[step])
        for t, clone in enumerate(clones):
            clone.step(int(streams[step, t]))
    for t, clone in enumerate(clones):
        lane = fleet.lane_network(t)
        assert np.array_equal(lane.w_out, clone.w_out)
        for step in range(half, ROUNDS):
            got = lane.step(int(streams[step, t]))
            want = clone.step(int(streams[step, t]))
            assert np.array_equal(got, want), (backend, step, t)


def test_fleet_starts_from_prototype_weights() -> None:
    proto = _prototype("numpy")
    fleet = HebbianFleet(proto, 3)
    for t in range(3):
        assert np.array_equal(fleet.w_out[t], proto.w_out)
    # Lane weights are copies: learning must not write back.
    fleet.step_all([0, 1, 2])
    fleet.step_all([1, 2, 3])
    assert np.array_equal(proto.w_out,
                          _prototype("numpy").w_out)


def test_rejects_unsupported_prototypes() -> None:
    plastic = SparseHebbianNetwork(HebbianConfig(
        vocab_size=16, hidden_dim=64, plastic_hidden=True,
        backend="numpy"))
    with pytest.raises(ValueError, match="plastic_hidden"):
        HebbianFleet(plastic, 2)
    int8 = SparseHebbianNetwork(HebbianConfig(
        vocab_size=16, hidden_dim=64, backend="int8"))
    with pytest.raises(ValueError, match="int8"):
        HebbianFleet(int8, 2)
    with pytest.raises(ValueError, match="positive"):
        HebbianFleet(_prototype("numpy", pretrain=0), 0)


def test_rollout_from_lane_network_matches() -> None:
    """predict_rollout on a materialized lane equals the clone's."""
    proto = _prototype("numpy")
    fleet = HebbianFleet(proto, 2)
    clones = [proto.clone() for _ in range(2)]
    streams = _streams(2)
    for step in range(60):
        fleet.step_all(streams[step, :2])
        for t, clone in enumerate(clones):
            clone.step(int(streams[step, t]))
    for t, clone in enumerate(clones):
        lane = fleet.lane_network(t)
        assert lane.predict_rollout(width=2, length=3) == \
            clone.predict_rollout(width=2, length=3)


@pytest.mark.parametrize("backend", BACKENDS)
def test_step_lanes_subset_matches_clones(backend: str) -> None:
    """Stepping a changing subset each round equals per-clone steps."""
    proto = _prototype(backend)
    fleet = HebbianFleet(proto, N_LANES)
    clones = [proto.clone() for _ in range(N_LANES)]
    streams = _streams(3)
    rng = child_rng(30482, 0)
    for step in range(ROUNDS):
        k = int(rng.integers(1, N_LANES + 1))
        lanes = sorted(rng.choice(N_LANES, size=k, replace=False).tolist())
        classes = [int(streams[step, t]) for t in lanes]
        trains = [bool(rng.integers(0, 2)) for _ in lanes]
        probs = fleet.step_lanes(lanes, classes, trains)
        for i, t in enumerate(lanes):
            want = clones[t].step(classes[i], train=trains[i])
            assert np.array_equal(probs[i], want), (backend, step, t)
    for t, clone in enumerate(clones):
        assert np.array_equal(fleet.w_out[t], clone.w_out), (backend, t)
        assert int(fleet.train_steps[t]) == clone.train_steps


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("punish", [True, False])
def test_train_pairs_lanes_matches_clones(backend: str,
                                          punish: bool) -> None:
    """Batched replay application equals per-clone train_pairs calls."""
    proto = _prototype(backend, punish=punish)
    fleet = HebbianFleet(proto, N_LANES)
    clones = [proto.clone() for _ in range(N_LANES)]
    streams = _streams(4)
    rng = child_rng(30483, 0)
    for step in range(80):
        fleet.step_all(streams[step])
        for t, clone in enumerate(clones):
            clone.step(int(streams[step, t]))
        if step % 3 != 0:
            continue
        lanes = []
        pairs_per_lane = []
        scales = []
        for t in range(N_LANES):
            if rng.integers(0, 2) == 0:
                continue
            count = int(rng.integers(1, 5))
            pairs = [(int(rng.integers(0, VOCAB)),
                      int(rng.integers(0, VOCAB)))
                     for _ in range(count)]
            lanes.append(t)
            pairs_per_lane.append(pairs)
            scales.append(float(rng.choice([0.5, 1.0])))
        if not lanes:
            continue
        fleet.train_pairs_lanes(lanes, pairs_per_lane, scales)
        for t, pairs, scale in zip(lanes, pairs_per_lane, scales):
            clones[t].train_pairs(pairs, lr_scale=scale)
    for t, clone in enumerate(clones):
        assert np.array_equal(fleet.w_out[t], clone.w_out), (backend, t)


@pytest.mark.parametrize("backend", BACKENDS)
def test_rollout_lanes_matches_clones(backend: str) -> None:
    """Batched rollouts equal each clone's predict_rollout, including
    lanes with no scored step yet (empty rollout)."""
    proto = _prototype(backend)
    fleet = HebbianFleet(proto, N_LANES)
    clones = [proto.clone() for _ in range(N_LANES)]
    streams = _streams(5)
    # Leave lane N_LANES-1 unstepped: its rollout must be [].
    stepped = list(range(N_LANES - 1))
    for step in range(60):
        classes = [int(streams[step, t]) for t in stepped]
        fleet.step_lanes(stepped, classes, [True] * len(stepped))
        for i, t in enumerate(stepped):
            clones[t].step(classes[i])
    widths = [2, 3, 1, 4, 2][:N_LANES]
    lengths = [3, 2, 4, 1, 3][:N_LANES]
    rollouts = fleet.rollout_lanes(list(range(N_LANES)), widths, lengths)
    for t in range(N_LANES):
        want = clones[t].predict_rollout(width=widths[t],
                                         length=lengths[t])
        assert rollouts[t] == want, (backend, t)
    assert rollouts[N_LANES - 1] == []


@pytest.mark.parametrize("backend", BACKENDS)
def test_acquire_release_round_trip(backend: str) -> None:
    """A network adopted into a reserve fleet and released continues
    bit-identically to a twin that never left scalar-land."""
    proto = _prototype(backend)
    fleet = HebbianFleet(proto, 2, reserve=True)
    streams = _streams(6)
    nets = [proto.clone() for _ in range(3)]
    twins = [net.clone() for net in nets]
    # Warm the networks outside the fleet first.
    for step in range(20):
        for net, twin in zip(nets, twins):
            net.step(int(streams[step, 0]))
            twin.step(int(streams[step, 0]))
    # Adopt all three: the third acquisition forces a capacity grow.
    slots = [fleet.acquire_lane(net) for net in nets]
    assert len(set(slots)) == 3
    for step in range(20, 40):
        fleet.step_lanes(slots, [int(streams[step, 1])] * 3,
                         [True] * 3)
        for twin in twins:
            twin.step(int(streams[step, 1]))
    for slot, net, twin in zip(slots, nets, twins):
        fleet.release_lane(slot, net)
        assert np.array_equal(net.w_out, twin.w_out)
        assert net.train_steps == twin.train_steps
        for step in range(40, 60):
            got = net.step(int(streams[step, 2]))
            want = twin.step(int(streams[step, 2]))
            assert np.array_equal(got, want), (backend, step)
    # Released slots recycle without growing again.
    recycled = fleet.acquire_lane(nets[0])
    assert recycled in slots


def test_acquire_rejects_config_mismatch() -> None:
    proto = _prototype("numpy")
    fleet = HebbianFleet(proto, 1, reserve=True)
    other = SparseHebbianNetwork(HebbianConfig(
        vocab_size=VOCAB, hidden_dim=200, seed=11, backend="numpy"))
    with pytest.raises(ValueError, match="config"):
        fleet.acquire_lane(other)
