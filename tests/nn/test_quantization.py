"""Tests for INT8 quantization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.lstm import LSTMConfig, OnlineLSTM
from repro.nn.quantization import QuantizedTensor, quantization_error, quantize_lstm


class TestQuantizedTensor:
    def test_roundtrip_error_bounded(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=(40, 40))
        qt = QuantizedTensor.quantize(values, bits=8)
        err = np.abs(qt.dequantize() - values).max()
        assert err <= qt.scale / 2 + 1e-12

    def test_zero_tensor(self):
        qt = QuantizedTensor.quantize(np.zeros(10))
        np.testing.assert_array_equal(qt.dequantize(), np.zeros(10))

    def test_int_range_respected(self):
        values = np.array([-10.0, 10.0, 3.3])
        qt = QuantizedTensor.quantize(values, bits=8)
        assert qt.q.max() <= 127 and qt.q.min() >= -128

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            QuantizedTensor.quantize(np.ones(3), bits=1)

    def test_more_bits_less_error(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=500)
        assert quantization_error(values, 8) < quantization_error(values, 4)

    def test_error_zero_for_zero_norm(self):
        assert quantization_error(np.zeros(5)) == 0.0


class TestQuantizeLSTM:
    def test_preserves_learned_behaviour(self):
        model = OnlineLSTM(LSTMConfig(vocab_size=8, embed_dim=8, hidden_dim=16,
                                      window=4, lr=1.0, seed=0))
        cycle = [1, 3, 5]
        for _ in range(150):
            for c in cycle:
                model.step(c)
        full = model.evaluate_sequence(cycle * 6)
        quantized = quantize_lstm(model, bits=8)
        q8 = quantized.evaluate_sequence(cycle * 6)
        assert full > 0.9
        assert q8 > 0.8  # small degradation only (the §5.5 robustness story)

    def test_original_untouched(self):
        model = OnlineLSTM(LSTMConfig(vocab_size=8, embed_dim=4, hidden_dim=8,
                                      seed=0))
        before = {k: v.copy() for k, v in model.net.params.items()}
        quantize_lstm(model)
        for key, value in model.net.params.items():
            np.testing.assert_array_equal(value, before[key])

    def test_weights_on_quantized_grid(self):
        model = OnlineLSTM(LSTMConfig(vocab_size=8, embed_dim=4, hidden_dim=8,
                                      seed=0))
        quantized = quantize_lstm(model, bits=8)
        for values in quantized.net.params.values():
            distinct = np.unique(values)
            assert len(distinct) <= 256
