"""Tests for op counting and the calibrated latency model (Fig. 2, Table 2)."""

from __future__ import annotations

import pytest

from repro.nn.costs import (
    DEFAULT_LATENCY_MODEL,
    PAPER_ANCHORS_US,
    LatencyModel,
    OpCount,
    hebbian_inference_ops,
    hebbian_parameter_count,
    hebbian_training_ops,
    lstm_inference_ops,
    lstm_training_ops,
)
from repro.nn.hebbian import HebbianConfig
from repro.nn.lstm import LSTMConfig


class TestOpCount:
    def test_add(self):
        a = OpCount(fp_ops=10, int_ops=5, param_bytes=100)
        b = OpCount(fp_ops=1, transcendental_ops=2, param_bytes=50)
        c = a + b
        assert c.fp_ops == 11 and c.int_ops == 5 and c.transcendental_ops == 2
        assert c.param_bytes == 100  # storage is max, not sum

    def test_scaled(self):
        a = OpCount(fp_ops=10, param_bytes=7)
        assert a.scaled(3).fp_ops == 30
        assert a.scaled(3).param_bytes == 7

    def test_total(self):
        assert OpCount(fp_ops=1, transcendental_ops=2, int_ops=3).total_ops == 6


class TestLSTMCounts:
    def test_inference_macs_formula(self):
        cfg = LSTMConfig(vocab_size=10, embed_dim=4, hidden_dim=6)
        ops = lstm_inference_ops(cfg)
        assert ops.fp_ops == 4 * 6 * (4 + 6) + 6 * 10
        assert ops.transcendental_ops == 5 * 6 + 10

    def test_rollout_scales_linearly(self):
        cfg = LSTMConfig()
        one = lstm_inference_ops(cfg, future_steps=1)
        four = lstm_inference_ops(cfg, future_steps=4)
        assert four.fp_ops == 4 * one.fp_ops

    def test_quantized_moves_macs_to_int(self):
        cfg = LSTMConfig()
        q = lstm_inference_ops(cfg, quantized=True)
        f = lstm_inference_ops(cfg, quantized=False)
        assert q.int_ops == f.fp_ops and q.fp_ops == 0
        assert q.param_bytes < f.param_bytes

    def test_training_exceeds_inference(self):
        cfg = LSTMConfig()
        assert (lstm_training_ops(cfg).fp_ops
                > 2 * lstm_inference_ops(cfg).fp_ops)

    def test_paper_scale_inference_ops(self):
        # Table 2: ">170k FP" ops per inference
        ops = lstm_inference_ops(LSTMConfig())
        assert ops.fp_ops + ops.transcendental_ops > 160_000


class TestHebbianCounts:
    def test_parameter_count_formula(self):
        cfg = HebbianConfig(vocab_size=100, hidden_dim=500,
                            connectivity_in=0.1, connectivity_rec=0.02,
                            connectivity_out=0.1)
        expected = round(100 * 500 * 0.1 + 500 * 500 * 0.02 + 500 * 100 * 0.1)
        assert hebbian_parameter_count(cfg) == expected

    def test_paper_scale_params(self):
        # Table 2: 49k parameters
        assert hebbian_parameter_count(HebbianConfig()) == pytest.approx(49_000, rel=0.02)

    def test_order_of_magnitude_advantage(self):
        """Table 2's claim: ~3x fewer params, ~order fewer ops."""
        lstm_cfg, hebb_cfg = LSTMConfig(), HebbianConfig()
        assert lstm_cfg.parameter_count / hebbian_parameter_count(hebb_cfg) > 3.0
        lstm_ops = lstm_inference_ops(lstm_cfg).total_ops
        hebb_ops = hebbian_inference_ops(hebb_cfg).total_ops
        assert lstm_ops / hebb_ops > 10.0

    def test_training_exceeds_inference(self):
        cfg = HebbianConfig()
        assert hebbian_training_ops(cfg).int_ops > hebbian_inference_ops(cfg).int_ops

    def test_inference_ops_all_integer(self):
        ops = hebbian_inference_ops(HebbianConfig())
        assert ops.fp_ops == 0 and ops.int_ops > 0


class TestLatencyModel:
    def test_paper_anchor_lstm_fp32(self):
        us = DEFAULT_LATENCY_MODEL.inference_us(lstm_inference_ops(LSTMConfig()),
                                                threads=1, family="lstm")
        assert us > PAPER_ANCHORS_US["lstm_inference_fp32"]

    def test_paper_anchor_lstm_int8(self):
        us = DEFAULT_LATENCY_MODEL.inference_us(
            lstm_inference_ops(LSTMConfig(), quantized=True), family="lstm")
        assert us > PAPER_ANCHORS_US["lstm_inference_int8"]
        fp32 = DEFAULT_LATENCY_MODEL.inference_us(lstm_inference_ops(LSTMConfig()),
                                                  family="lstm")
        assert us < fp32  # quantization does help, just not enough

    def test_paper_anchor_lstm_training(self):
        us = DEFAULT_LATENCY_MODEL.training_us(lstm_training_ops(LSTMConfig()),
                                               family="lstm", batch_size=1)
        assert us > PAPER_ANCHORS_US["lstm_training_per_example"]

    def test_hebbian_meets_deployment_target(self):
        """§2.1 targets 1-10 us; the Hebbian network must land inside."""
        us = DEFAULT_LATENCY_MODEL.inference_us(hebbian_inference_ops(HebbianConfig()),
                                                family="hebbian")
        assert PAPER_ANCHORS_US["target_low"] <= us <= PAPER_ANCHORS_US["target_high"]

    def test_second_thread_helps_lstm_little(self):
        ops = lstm_inference_ops(LSTMConfig())
        t1 = DEFAULT_LATENCY_MODEL.inference_us(ops, 1, "lstm")
        t2 = DEFAULT_LATENCY_MODEL.inference_us(ops, 2, "lstm")
        assert t2 < t1
        assert t1 / t2 < 1.3  # poor parallelism (paper's observation)

    def test_rejects_unknown_thread_counts(self):
        with pytest.raises(ValueError):
            DEFAULT_LATENCY_MODEL.inference_us(OpCount(fp_ops=1), 4, "lstm")

    def test_rejects_unknown_family(self):
        with pytest.raises(ValueError):
            DEFAULT_LATENCY_MODEL.inference_us(OpCount(fp_ops=1), 2, "transformer")

    def test_batch_training_amortizes(self):
        model = LatencyModel()
        cfg = LSTMConfig()
        per1 = model.training_us(lstm_training_ops(cfg, 1), batch_size=1) / 1
        per64 = model.training_us(lstm_training_ops(cfg, 64), batch_size=64) / 64
        assert per64 < per1
