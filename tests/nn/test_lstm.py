"""Behavioural tests for the online LSTM prefetch model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.lstm import LSTMConfig, OnlineLSTM


class TestConfig:
    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            LSTMConfig(vocab_size=0)

    def test_parameter_count_formula(self):
        cfg = LSTMConfig(vocab_size=10, embed_dim=4, hidden_dim=6)
        expected = 10 * 4 + (4 + 6) * 24 + 24 + 6 * 10 + 10
        assert cfg.parameter_count == expected

    def test_paper_scale_config(self):
        cfg = LSTMConfig()  # vocab 128, embed 64, hidden 160
        assert 165_000 <= cfg.parameter_count <= 180_000


class TestOnlineLearning:
    def test_learns_constant_sequence(self, tiny_lstm):
        for _ in range(150):
            tiny_lstm.step(3)
        assert tiny_lstm.evaluate_sequence([3] * 30) > 0.9

    def test_learns_cycle(self, tiny_lstm):
        cycle = [1, 4, 2, 7]
        for _ in range(120):
            for c in cycle:
                tiny_lstm.step(c)
        assert tiny_lstm.evaluate_sequence(cycle * 6) > 0.9

    def test_no_training_when_disabled(self, tiny_lstm):
        before = {k: v.copy() for k, v in tiny_lstm.net.params.items()}
        for _ in range(20):
            tiny_lstm.step(5, train=False)
        for key, value in tiny_lstm.net.params.items():
            np.testing.assert_array_equal(value, before[key])

    def test_lr_scale_slows_learning(self):
        fast = OnlineLSTM(LSTMConfig(vocab_size=8, embed_dim=8, hidden_dim=8,
                                     lr=1.0, seed=0))
        slow = OnlineLSTM(LSTMConfig(vocab_size=8, embed_dim=8, hidden_dim=8,
                                     lr=1.0, seed=0))
        for _ in range(30):
            fast.step(2, lr_scale=1.0)
            slow.step(2, lr_scale=0.01)
        assert fast.evaluate_sequence([2] * 20) > slow.evaluate_sequence([2] * 20)

    def test_rejects_out_of_vocab(self, tiny_lstm):
        with pytest.raises(ValueError):
            tiny_lstm.step(99)
        with pytest.raises(ValueError):
            tiny_lstm.train_pair(0, 99)

    def test_train_steps_counted(self, tiny_lstm):
        tiny_lstm.step(1)          # first step: no transition yet
        tiny_lstm.step(2)
        tiny_lstm.step(3, train=False)
        assert tiny_lstm.train_steps == 1


class TestTrainPair:
    def test_returns_pre_update_confidence(self, tiny_lstm):
        conf1 = tiny_lstm.train_pair(1, 2)
        assert 0.0 <= conf1 <= 1.0
        for _ in range(60):
            tiny_lstm.train_pair(1, 2)
        assert tiny_lstm.train_pair(1, 2) > conf1

    def test_does_not_touch_streaming_state(self, tiny_lstm):
        tiny_lstm.step(1, train=False)
        h_before = tiny_lstm._h.copy()
        tiny_lstm.train_pair(3, 4)
        np.testing.assert_array_equal(tiny_lstm._h, h_before)


class TestRollout:
    def test_empty_before_first_step(self, tiny_lstm):
        assert tiny_lstm.predict_rollout() == []

    def test_shapes(self, tiny_lstm):
        tiny_lstm.step(1, train=False)
        rollout = tiny_lstm.predict_rollout(width=3, length=2)
        assert len(rollout) == 2
        assert all(len(step) == 3 for step in rollout)
        for step in rollout:
            probs = [p for _, p in step]
            assert probs == sorted(probs, reverse=True)

    def test_rollout_predicts_learned_cycle(self, tiny_lstm):
        cycle = [1, 4, 2, 7]
        for _ in range(150):
            for c in cycle:
                tiny_lstm.step(c)
        tiny_lstm.reset_state()
        tiny_lstm.step(1, train=False)
        rollout = tiny_lstm.predict_rollout(width=1, length=3)
        assert [step[0][0] for step in rollout] == [4, 2, 7]

    def test_rollout_does_not_mutate_state(self, tiny_lstm):
        tiny_lstm.step(1, train=False)
        h = tiny_lstm._h.copy()
        tiny_lstm.predict_rollout(width=2, length=4)
        np.testing.assert_array_equal(tiny_lstm._h, h)


class TestCloneAndReset:
    def test_clone_is_independent(self, tiny_lstm):
        for _ in range(30):
            tiny_lstm.step(2)
        twin = tiny_lstm.clone()
        for _ in range(30):
            twin.step(5)
        # original unchanged by twin's training
        assert tiny_lstm.evaluate_sequence([2] * 10) > 0.8

    def test_clone_preserves_predictions(self, tiny_lstm):
        for _ in range(40):
            tiny_lstm.step(2)
        twin = tiny_lstm.clone()
        assert twin.evaluate_sequence([2] * 10) == pytest.approx(
            tiny_lstm.evaluate_sequence([2] * 10))

    def test_reset_clears_state_keeps_weights(self, tiny_lstm):
        for _ in range(80):
            tiny_lstm.step(2)
        tiny_lstm.reset_state()
        assert tiny_lstm._prev_class is None
        assert tiny_lstm.evaluate_sequence([2] * 10) > 0.8

    def test_evaluate_sequence_frozen(self, tiny_lstm):
        for _ in range(20):
            tiny_lstm.step(2)
        before = {k: v.copy() for k, v in tiny_lstm.net.params.items()}
        tiny_lstm.evaluate_sequence([1, 2, 3] * 5)
        for key, value in tiny_lstm.net.params.items():
            np.testing.assert_array_equal(value, before[key])

    def test_evaluate_empty_sequence(self, tiny_lstm):
        assert tiny_lstm.evaluate_sequence([1]) == 0.0
