"""Numerical verification of the hand-derived LSTM gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.lstm import LSTM, LSTMConfig


def numeric_grad(net: LSTM, key: str, idx: tuple, inputs, targets, mask,
                 eps: float = 1e-6) -> float:
    def loss() -> float:
        probs, _ = net.forward(inputs)
        B, T = targets.shape
        picked = probs[np.arange(B)[:, None], np.arange(T)[None, :], targets]
        return float(-(np.log(np.clip(picked, 1e-12, None)) * mask).sum()
                     / max(float(mask.sum()), 1.0))

    original = net.params[key][idx]
    net.params[key][idx] = original + eps
    up = loss()
    net.params[key][idx] = original - eps
    down = loss()
    net.params[key][idx] = original
    return (up - down) / (2 * eps)


@pytest.fixture(scope="module")
def setup():
    config = LSTMConfig(vocab_size=7, embed_dim=5, hidden_dim=6, seed=1)
    net = LSTM(config)
    rng = np.random.default_rng(0)
    inputs = rng.integers(0, 7, size=(2, 4))
    targets = rng.integers(0, 7, size=(2, 4))
    mask = np.ones((2, 4))
    _, cache = net.forward(inputs)
    grads = net.backward(cache, targets, mask)
    return net, inputs, targets, mask, grads


@pytest.mark.parametrize("key", ["E", "W", "b", "Wy", "by"])
def test_gradient_matches_numeric(setup, key):
    net, inputs, targets, mask, grads = setup
    rng = np.random.default_rng(42)
    shape = net.params[key].shape
    samples = min(12, int(np.prod(shape)))
    flat_indices = rng.choice(int(np.prod(shape)), size=samples, replace=False)
    for flat in flat_indices:
        idx = np.unravel_index(int(flat), shape)
        numeric = numeric_grad(net, key, idx, inputs, targets, mask)
        analytic = grads[key][idx]
        denom = max(1e-7, abs(numeric) + abs(analytic))
        assert abs(numeric - analytic) / denom < 1e-4, (key, idx)


def test_masked_steps_get_no_gradient(setup):
    net, inputs, targets, _, _ = setup
    mask = np.zeros((2, 4))
    mask[:, -1] = 1.0
    _, cache = net.forward(inputs)
    grads = net.backward(cache, targets, mask)
    # flipping an early target must not change the loss gradient
    targets2 = targets.copy()
    targets2[:, 0] = (targets[:, 0] + 1) % 7
    _, cache2 = net.forward(inputs)
    grads2 = net.backward(cache2, targets2, mask)
    for key in grads:
        np.testing.assert_allclose(grads[key], grads2[key], atol=1e-12)


def test_batch_invariance_of_mean_loss():
    """Training on a 2-batch equals averaging the two single gradients."""
    config = LSTMConfig(vocab_size=5, embed_dim=4, hidden_dim=4, seed=2)
    net = LSTM(config)
    inputs = np.array([[1, 2, 3], [4, 0, 1]])
    targets = np.array([[2, 3, 4], [0, 1, 2]])
    _, cache = net.forward(inputs)
    batch_grads = net.backward(cache, targets)

    accum = {k: np.zeros_like(v) for k, v in net.params.items()}
    for b in range(2):
        _, cache1 = net.forward(inputs[b:b + 1])
        g = net.backward(cache1, targets[b:b + 1])
        for k in accum:
            accum[k] += 0.5 * g[k]
    for k in accum:
        np.testing.assert_allclose(batch_grads[k], accum[k], atol=1e-10)
