"""Backend registry, fallback, and serving-mode contracts (PR 6).

Three families of claims:

- **registry behavior** — name validation, ``auto`` resolution, the
  explicit-request-raises / auto-falls-back asymmetry, the one-time
  fallback warning, and the numba-absent import path;
- **cross-backend bit-identity** — every available compiled backend's
  Hebbian kernels reproduce the numpy reference exactly, over long
  randomized streams (the simulator-side twin lives in
  ``tests/memsim/test_engine_auto.py``);
- **int8 serving contract** — the one deliberate exception to
  bit-identity: training weights stay float64 (identical to numpy when
  learning does not read the served scores), the serving mirror sits on
  the quantization grid, and its error is bounded by ``scale / 2``.

Plus the harness plumbing: the resolved backend lands in the telemetry
manifest's ``env`` (provenance), and never in a ``run_grid`` cache key
(identity).
"""

from __future__ import annotations

import dataclasses
import warnings

import numpy as np
import pytest

from repro.harness.runner import run_grid
from repro.memsim import NullPrefetcher, SimConfig, simulate
from repro.nn import backends
from repro.nn.backends import (
    BackendUnavailableError,
    available_backends,
    backend_available,
    resolve_backend,
)
from repro.nn.hebbian import HebbianConfig, SparseHebbianNetwork
from repro.nn.quantization import snap_to_grid
from repro.patterns.applications import AppSpec, pagerank_graphchi
from repro.seeding import spawn_seeds
from repro.telemetry import Telemetry

COMPILED = [b for b in available_backends("sim") if b != "numpy"]


def _require_compiled(backend: str) -> None:
    if backend == "__none__":
        pytest.skip("no compiled backend available in this environment")


# ----------------------------------------------------------------------
# Registry behavior
# ----------------------------------------------------------------------
def test_numpy_and_int8_always_available():
    assert backend_available("numpy")
    assert backend_available("int8")
    assert "numpy" in available_backends("sim")
    assert "int8" in available_backends("nn")
    assert "int8" not in backends.SIM_BACKENDS


def test_unknown_backend_name_rejected():
    with pytest.raises(ValueError, match="unknown backend"):
        resolve_backend("cuda")
    with pytest.raises(ValueError, match="unknown backend"):
        resolve_backend("int8", domain="sim")  # int8 is nn-only
    with pytest.raises(ValueError, match="backend"):
        HebbianConfig(vocab_size=16, backend="cuda")


def test_auto_never_resolves_to_int8():
    assert resolve_backend("auto", domain="nn") != "int8"


def test_explicit_unavailable_backend_raises(monkeypatch):
    monkeypatch.setattr(backends, "_disabled", {"numba", "c"})
    for name in ("numba", "c"):
        with pytest.raises(BackendUnavailableError):
            resolve_backend(name)
    # The same hard-request contract through the two public surfaces.
    with pytest.raises(BackendUnavailableError):
        SparseHebbianNetwork(HebbianConfig(vocab_size=16, backend="c"))
    trace = pagerank_graphchi(AppSpec(n=2000, seed=1))
    with pytest.raises(BackendUnavailableError):
        simulate(trace, NullPrefetcher(), SimConfig(memory_fraction=0.5),
                 backend="c")


def test_auto_fallback_warns_once(monkeypatch):
    monkeypatch.setattr(backends, "_disabled", {"numba", "c"})
    monkeypatch.setattr(backends, "_warned_fallback", False)
    with pytest.warns(RuntimeWarning, match="falling back"):
        assert resolve_backend("auto") == "numpy"
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert resolve_backend("auto") == "numpy"  # silent the second time


def test_set_default_backend_validates(monkeypatch):
    monkeypatch.setattr(backends, "_disabled", {"numba", "c"})
    monkeypatch.setattr(backends, "_default_backend", "auto")
    with pytest.raises(BackendUnavailableError):
        backends.set_default_backend("c")
    with pytest.raises(ValueError):
        backends.set_default_backend("int8")  # nn-only: no sim meaning
    backends.set_default_backend("numpy")
    assert resolve_backend("auto") == "numpy"
    backends.set_default_backend("auto")
    assert backends.get_default_backend() == "auto"


def test_numba_absent_import_is_clean():
    """The numba module must import (and report itself unavailable)
    without numba installed; a hard request then raises, never falls
    back silently."""
    from repro.nn.backends import numba_backend

    assert isinstance(numba_backend.available(), bool)
    if not numba_backend.available():
        with pytest.raises(RuntimeError):
            numba_backend.make_sim_kernels()
        with pytest.raises(RuntimeError):
            numba_backend.make_hebbian_kernels(
                rec_pad=np.zeros((4, 2), dtype=np.int64), hidden_dim=4,
                vocab_size=8)


# ----------------------------------------------------------------------
# Cross-backend Hebbian bit-identity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", COMPILED or ["__none__"])
@pytest.mark.parametrize("mode", ["onehot", "signature"])
def test_compiled_hebbian_matches_numpy_bit_identical(backend, mode):
    _require_compiled(backend)
    config = HebbianConfig(vocab_size=64, hidden_dim=300, input_mode=mode,
                           recurrent_strength=0.1, seed=11)
    ref = SparseHebbianNetwork(dataclasses.replace(config, backend="numpy"))
    fast = SparseHebbianNetwork(dataclasses.replace(config, backend=backend))
    rng = np.random.default_rng(99)
    sequence = rng.integers(0, config.vocab_size, size=600)
    for i, class_id in enumerate(sequence):
        p_ref = ref.step(int(class_id))
        p_fast = fast.step(int(class_id))
        assert np.array_equal(p_ref, p_fast), f"probs diverged at step {i}"
        if i % 37 == 0:
            assert (ref.predict_rollout(width=2, length=3)
                    == fast.predict_rollout(width=2, length=3))
    pairs = [(int(a), int(b)) for a, b in
             rng.integers(0, config.vocab_size, size=(50, 2))]
    ref.train_pairs(pairs, lr_scale=0.1)
    fast.train_pairs(pairs, lr_scale=0.1)
    np.testing.assert_array_equal(ref.w_out, fast.w_out)


@pytest.mark.parametrize("backend", COMPILED or ["__none__"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_compiled_hebbian_fuzz(backend, seed):
    """Randomized interleavings of step/train_pair/train_pairs/readout
    stay bit-identical to numpy."""
    _require_compiled(backend)
    net_seed, stream_seed = spawn_seeds(seed, 2)
    config = HebbianConfig(vocab_size=48, hidden_dim=200, seed=net_seed)
    ref = SparseHebbianNetwork(dataclasses.replace(config, backend="numpy"))
    fast = SparseHebbianNetwork(dataclasses.replace(config, backend=backend))
    rng = np.random.default_rng(stream_seed)
    for _ in range(300):
        op = rng.integers(0, 4)
        if op == 0:
            c = int(rng.integers(0, config.vocab_size))
            assert np.array_equal(ref.step(c), fast.step(c))
        elif op == 1:
            a, b = rng.integers(0, config.vocab_size, size=2)
            assert (ref.train_pair(int(a), int(b), lr_scale=0.2)
                    == fast.train_pair(int(a), int(b), lr_scale=0.2))
        elif op == 2:
            pairs = [(int(a), int(b)) for a, b in
                     rng.integers(0, config.vocab_size, size=(5, 2))]
            ref.train_pairs(pairs, lr_scale=0.1)
            fast.train_pairs(pairs, lr_scale=0.1)
        else:
            c = int(rng.integers(0, config.vocab_size))
            np.testing.assert_array_equal(ref.readout(ref.hidden_code(c)),
                                          fast.readout(fast.hidden_code(c)))
    np.testing.assert_array_equal(ref.w_out, fast.w_out)


# ----------------------------------------------------------------------
# int8 serving contract (the documented bit-identity exception)
# ----------------------------------------------------------------------
def _int8_pair() -> tuple[SparseHebbianNetwork, SparseHebbianNetwork]:
    """Same seed, punish_wrong off: learning never reads the served
    scores, so the float64 training weights must match exactly and only
    serving differs."""
    config = HebbianConfig(vocab_size=64, hidden_dim=300, seed=11,
                           punish_wrong=False)
    return (SparseHebbianNetwork(dataclasses.replace(config,
                                                     backend="numpy")),
            SparseHebbianNetwork(dataclasses.replace(config,
                                                     backend="int8")))


def test_int8_training_weights_identical_serving_on_grid():
    ref, quant = _int8_pair()
    rng = np.random.default_rng(17)
    for class_id in rng.integers(0, 64, size=500):
        ref.step(int(class_id))
        quant.step(int(class_id))
    np.testing.assert_array_equal(ref.w_out, quant.w_out)
    scale = quant._q_scale
    # The mirror is exactly the grid snap of the live weights...
    np.testing.assert_array_equal(quant._serve_w,
                                  snap_to_grid(quant.w_out, scale))
    # ...every mirror value is an integer multiple of the scale...
    steps = quant._serve_w / scale
    np.testing.assert_allclose(steps, np.round(steps), atol=1e-9)
    assert float(np.abs(steps).max()) <= 127.0
    # ...and the elementwise serving error is bounded by scale / 2.
    assert float(np.abs(quant._serve_w - quant.w_out).max()) \
        <= scale / 2 + 1e-12


def test_int8_readout_error_bounded():
    """Score error is at most (active rows) * scale / 2 — the documented
    accuracy-delta bound for the serving backend."""
    ref, quant = _int8_pair()
    rng = np.random.default_rng(23)
    for class_id in rng.integers(0, 64, size=500):
        ref.step(int(class_id))
        quant.step(int(class_id))
    scale = quant._q_scale
    for class_id in range(0, 64, 5):
        active = quant.hidden_code(class_id)
        bound = len(active) * scale / 2 + 1e-9
        delta = np.abs(quant.readout(active) - ref.readout(active))
        assert float(delta.max()) <= bound


# ----------------------------------------------------------------------
# Harness plumbing: manifest provenance, cache-key identity
# ----------------------------------------------------------------------
def test_backend_recorded_in_telemetry_manifest():
    trace = pagerank_graphchi(AppSpec(n=3000, seed=2))
    sink = Telemetry(interval=1000)
    result = simulate(trace, NullPrefetcher(), SimConfig(memory_fraction=0.5),
                      backend="numpy", telemetry=sink)
    assert result.backend_used == "numpy"
    assert sink.manifest()["env"]["backend"] == "numpy"


def _cell(spec: dict) -> dict:
    return {"value": spec["x"] * 2}


def _poisoned_cell(spec: dict) -> dict:
    raise AssertionError("cell recomputed: backend leaked into the "
                         f"cache key for {spec!r}")


def test_run_grid_cache_key_excludes_backend(tmp_path):
    specs = [{"x": 3}, {"x": 4}]
    first = run_grid(specs, _cell, jobs=1, cache_dir=tmp_path,
                     backend="numpy")
    assert first == [{"value": 6}, {"value": 8}]
    other = COMPILED[0] if COMPILED else "numpy"
    # Same specs under a different backend: every cell must be served
    # from the cache (the poisoned fn raises if any cell recomputes).
    second = run_grid(specs, _poisoned_cell, jobs=1, cache_dir=tmp_path,
                      backend=other)
    assert second == first


def test_run_grid_rejects_unavailable_backend(monkeypatch, tmp_path):
    monkeypatch.setattr(backends, "_disabled", {"numba", "c"})
    with pytest.raises(BackendUnavailableError):
        run_grid([{"x": 1}], _cell, jobs=1, cache_dir=tmp_path, backend="c")
