"""Differential suite: the daemon, replayed single-threaded in lockstep,
is bit-identical to the offline prefetcher.

The recorded miss stream comes from a real ``simulate()`` run (cache
feedback shapes which accesses actually miss); a fresh offline
:class:`CLSPrefetcher` per tenant replays it to produce the reference,
and :func:`replay_lockstep` drives the daemon's own round functions in
the canonical stage → drain-trainer → finish → answer order.  Compared
exactly — no tolerances:

- the prefetch pages answered per miss,
- the learned live *and* shadow ``w_out``,
- the §5.5 confidence EMA and redeploy count,
- the self-monitored accuracy EMA.

Parametrized over stacked/scalar serving and replay on/off, so the
fleet-batched path and the background-replay path are each held to the
same bit-identity bar.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cls_prefetcher import CLSPrefetcher, CLSPrefetcherConfig
from repro.memsim.simulator import SimConfig, simulate
from repro.nn.hebbian import HebbianConfig
from repro.patterns.generators import PatternSpec, generate
from repro.seeding import spawn_seeds
from repro.serve import PrefetchService, ServeConfig, replay_lockstep
from repro.serve.clock import VirtualClock

VOCAB = 64
GLOBAL_SEED = 11
N_TENANTS = 3
PATTERNS = ("pointer_chase", "stride", "indirect_index")


class _RecordingPrefetcher(CLSPrefetcher):
    """Offline prefetcher that records every miss it is shown."""

    def __init__(self, config: CLSPrefetcherConfig) -> None:
        super().__init__(config)
        self.recorded: list[tuple[int, int]] = []

    def on_miss_fast(self, index: int, address: int, page: int,
                     stream_id: int, timestamp: int) -> list[int]:
        self.recorded.append((address, timestamp))
        return super().on_miss_fast(index, address, page, stream_id,
                                    timestamp)


def _offline_config(tenant: int, replay: str | None) -> CLSPrefetcherConfig:
    return CLSPrefetcherConfig(
        vocab_size=VOCAB, prefetch_length=2, prefetch_width=2,
        min_confidence=0.01, min_accuracy=0.05,
        replay_policy=replay, availability=True, phase_detection=False,
        hebbian=HebbianConfig(vocab_size=VOCAB, seed=GLOBAL_SEED),
        seed=spawn_seeds(GLOBAL_SEED, N_TENANTS)[tenant])


def _record_streams(replay: str | None
                    ) -> dict[int, list[tuple[int, int]]]:
    """Run one ``simulate()`` per tenant; return its recorded misses."""
    streams: dict[int, list[tuple[int, int]]] = {}
    for tenant in range(N_TENANTS):
        trace = generate(PATTERNS[tenant % len(PATTERNS)],
                         PatternSpec(n=600, working_set=48,
                                     element_size=4096,
                                     seed=GLOBAL_SEED + tenant))
        recorder = _RecordingPrefetcher(_offline_config(tenant, replay))
        simulate(trace, recorder, SimConfig(memory_fraction=0.5))
        streams[tenant] = recorder.recorded
    return streams


@pytest.mark.parametrize("stacked", [True, False],
                         ids=["stacked", "scalar"])
@pytest.mark.parametrize("replay", [None, "full"],
                         ids=["no-replay", "replay"])
def test_lockstep_daemon_matches_offline(stacked: bool,
                                         replay: str | None) -> None:
    streams = _record_streams(replay)
    # Interleave tenant streams round-robin into one daemon feed.
    events: list[tuple[int, int, int]] = []
    for step in range(max(len(s) for s in streams.values())):
        for tenant in range(N_TENANTS):
            if step < len(streams[tenant]):
                address, timestamp = streams[tenant][step]
                events.append((tenant, address, timestamp))

    # Fresh offline references replaying the recorded streams.
    refs = {t: CLSPrefetcher(_offline_config(t, replay))
            for t in range(N_TENANTS)}
    offline: list[list[int]] = []
    for tenant, address, timestamp in events:
        offline.append(refs[tenant].on_miss_fast(
            0, address, address >> 12, 0, timestamp))

    service = PrefetchService(
        ServeConfig(vocab_size=VOCAB, prefetch_length=2, prefetch_width=2,
                    min_confidence=0.01, min_accuracy=0.05,
                    replay_policy=replay, stacked=stacked,
                    seed=GLOBAL_SEED),
        clock=VirtualClock())
    online = replay_lockstep(service, events)

    assert online == offline, "prefetch answers diverged from offline"
    for tenant, ref in refs.items():
        lane = service.lane(tenant)
        assert ref.manager is not None
        assert np.array_equal(lane.manager.live.w_out,
                              ref.manager.live.w_out), \
            f"tenant {tenant}: live weights diverged"
        assert np.array_equal(lane.manager.shadow.w_out,
                              ref.manager.shadow.w_out), \
            f"tenant {tenant}: shadow weights diverged"
        assert lane.manager.confidence_ema == ref.manager.confidence_ema
        assert lane.manager.redeploys == ref.manager.redeploys
        assert lane.accuracy_ema == ref.accuracy_ema
        assert lane.misses_seen == ref.stats.misses_seen
        assert lane.trained_steps == ref.stats.trained_steps
        assert lane.replayed_pairs == ref.stats.replayed_pairs
    # The daemon actually redeployed somewhere, or this test pins nothing
    # about the availability protocol.
    assert sum(service.lane(t).manager.redeploys
               for t in range(N_TENANTS)) > 0


def test_stacked_and_scalar_serving_agree() -> None:
    """The fleet-batched serve path and the per-lane scalar path are the
    same daemon bit for bit (mirrors the fleet's own equivalence suite,
    at the service level)."""
    events = [(t, 4096 * ((i * (t + 3)) % 40), i)
              for i in range(120) for t in range(2)]

    def run(stacked: bool) -> tuple[list[list[int]], list[np.ndarray]]:
        service = PrefetchService(
            ServeConfig(vocab_size=VOCAB, prefetch_length=2,
                        prefetch_width=2, stacked=stacked, seed=5),
            clock=VirtualClock())
        answers = replay_lockstep(service, events)
        weights = [np.array(service.lane(t).live_net().w_out)
                   for t in range(2)]
        return answers, weights

    answers_stacked, weights_stacked = run(True)
    answers_scalar, weights_scalar = run(False)
    assert answers_stacked == answers_scalar
    for stacked_w, scalar_w in zip(weights_stacked, weights_scalar):
        assert np.array_equal(stacked_w, scalar_w)


def test_lockstep_is_deterministic() -> None:
    """Same stream, same config → byte-identical manifests counters."""
    events = [(t, 4096 * ((7 * i + t) % 30), i)
              for i in range(90) for t in range(2)]

    def run() -> tuple[list[list[int]], dict[str, int]]:
        service = PrefetchService(
            ServeConfig(vocab_size=VOCAB, seed=3), clock=VirtualClock())
        return replay_lockstep(service, events), service.counters()

    first, second = run(), run()
    assert first == second
