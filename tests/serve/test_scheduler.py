"""The scheduler seam: determinism, replay, quiescence, error surfacing.

The whole serve test strategy rests on these properties — a failing
interleaving must reprint its seed and replay bit-identically from it —
so they are pinned directly, on tiny synthetic actors, before any
service-level suite relies on them.
"""

from __future__ import annotations

import time

import pytest

from repro.serve.clock import RealClock, VirtualClock
from repro.serve.loop import ThreadScheduler, VirtualScheduler


class CountingActor:
    """Makes progress ``budget`` times, then reports idle."""

    def __init__(self, name: str, budget: int) -> None:
        self.name = name
        self.budget = budget
        self.steps = 0

    def step(self) -> bool:
        if self.budget <= 0:
            return False
        self.budget -= 1
        self.steps += 1
        return True


class FailingActor:
    name = "bomb"

    def step(self) -> bool:
        raise ValueError("boom")


def _run_trace(seed: int, budgets: tuple[int, ...]) -> list[str]:
    sched = VirtualScheduler(VirtualClock(), seed=seed)
    for i, budget in enumerate(budgets):
        sched.add(CountingActor(f"a{i}", budget))
    sched.run_until_idle()
    return sched.trace


def test_same_seed_same_trace() -> None:
    budgets = (7, 3, 5)
    assert _run_trace(42, budgets) == _run_trace(42, budgets)


def test_different_seeds_differ() -> None:
    budgets = (50, 50)
    traces = {tuple(_run_trace(seed, budgets)) for seed in range(8)}
    assert len(traces) > 1, "seed does not influence the interleaving"


def test_run_until_idle_reaches_quiescence() -> None:
    sched = VirtualScheduler(VirtualClock(), seed=0)
    actors = [CountingActor("a", 4), CountingActor("b", 2)]
    for actor in actors:
        sched.add(actor)
    sched.run_until_idle()
    assert [a.steps for a in actors] == [4, 2]
    # Quiescent: further stepping is a no-op.
    assert sched.step_once() is None


def test_progress_unparks_idle_actors() -> None:
    """An idle actor is re-tried after any other actor progresses."""

    class Producer:
        name = "producer"

        def __init__(self) -> None:
            self.queue: list[int] = []
            self.remaining = 3

        def step(self) -> bool:
            if self.remaining <= 0:
                return False
            self.remaining -= 1
            self.queue.append(1)
            return True

    class Consumer:
        name = "consumer"

        def __init__(self, producer: Producer) -> None:
            self.producer = producer
            self.consumed = 0

        def step(self) -> bool:
            if not self.producer.queue:
                return False
            self.producer.queue.pop()
            self.consumed += 1
            return True

    producer = Producer()
    consumer = Consumer(producer)
    # Force the consumer to run first (it parks), then the producer.
    sched = VirtualScheduler(VirtualClock(), seed=0,
                             chooser=lambda names: names.index(
                                 "producer") if "producer" in names else 0)
    sched.add(producer)
    sched.add(consumer)
    sched.run_until_idle()
    assert consumer.consumed == 3


def test_actor_failure_reprints_seed() -> None:
    sched = VirtualScheduler(VirtualClock(), seed=1337)
    sched.add(FailingActor())
    with pytest.raises(RuntimeError, match="seed=1337"):
        sched.step_once()


def test_live_lock_reprints_seed() -> None:
    sched = VirtualScheduler(VirtualClock(), seed=99)
    sched.add(CountingActor("spin", 10**9))
    with pytest.raises(RuntimeError, match="seed=99"):
        sched.run_until_idle(max_steps=100)


def test_chooser_out_of_range_raises() -> None:
    sched = VirtualScheduler(VirtualClock(), seed=0,
                             chooser=lambda names: len(names))
    sched.add(CountingActor("a", 1))
    with pytest.raises(IndexError):
        sched.step_once()


def test_duplicate_actor_name_rejected() -> None:
    sched = VirtualScheduler(VirtualClock(), seed=0)
    sched.add(CountingActor("a", 1))
    with pytest.raises(ValueError, match="duplicate"):
        sched.add(CountingActor("a", 1))


def test_virtual_clock_advances_per_step_cost() -> None:
    clock = VirtualClock()
    sched = VirtualScheduler(clock, seed=0, step_cost=0.5,
                             costs={"slow": 2.0})
    sched.add(CountingActor("fast", 2))
    sched.add(CountingActor("slow", 1))
    sched.run_until_idle()
    fast_steps = sched.trace.count("fast")
    slow_steps = sched.trace.count("slow")
    expected = 0.5 * fast_steps + 2.0 * slow_steps
    assert clock.now() == pytest.approx(expected)


def test_virtual_clock_rejects_negative_advance() -> None:
    with pytest.raises(ValueError):
        VirtualClock().advance(-1.0)


def test_real_clock_is_monotone() -> None:
    clock = RealClock()
    a = clock.now()
    b = clock.now()
    assert b >= a


def test_thread_scheduler_runs_actors_and_stops() -> None:
    sched = ThreadScheduler(poll_interval=1e-4)
    actors = [CountingActor("a", 100), CountingActor("b", 100)]
    for actor in actors:
        sched.add(actor)
    sched.start()
    deadline = time.monotonic() + 5.0
    while (any(a.budget > 0 for a in actors)
           and time.monotonic() < deadline):
        time.sleep(1e-3)
    sched.stop()
    assert [a.steps for a in actors] == [100, 100]


def test_thread_scheduler_surfaces_actor_errors() -> None:
    sched = ThreadScheduler(poll_interval=1e-4)
    sched.add(FailingActor())
    sched.start()
    time.sleep(0.05)
    with pytest.raises(RuntimeError, match="bomb"):
        sched.stop()


def test_thread_scheduler_rejects_add_after_start() -> None:
    sched = ThreadScheduler()
    sched.start()
    try:
        with pytest.raises(RuntimeError):
            sched.add(CountingActor("late", 1))
    finally:
        sched.stop()
