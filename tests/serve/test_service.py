"""Service-level end-to-end suites: random interleavings, the manifest
schema, the threaded production driver, and the (env-gated) soak leg.

The virtual-scheduler suites sweep interleaving seeds — every seed is a
different schedule, and a failure reprints the seed so the schedule
replays exactly.  The threaded suites run the same actors on real
threads: a smoke run, the "training never blocks a query" latency
assertion (slow trainer, fast answers), and a 60 s fault-injected soak
behind ``REPRO_SERVE_SOAK=1``.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.serve import (FaultPlan, PrefetchService, ServeConfig,
                         ThreadScheduler)
from repro.serve.clock import VirtualClock
from repro.serve.loop import VirtualScheduler
from tests.serve.test_faults import ClientActor, _events, _run

VOCAB = 64


@pytest.mark.parametrize("seed", range(6))
def test_random_interleavings_answer_everything(seed: int) -> None:
    """Whatever the schedule, quiescence implies every event was
    processed and every query answered."""
    events = _events(90, tenants=3)
    service = PrefetchService(ServeConfig(vocab_size=VOCAB, seed=7),
                              clock=VirtualClock())
    client = _run(service, events, seed=seed)
    counters = service.counters()
    assert counters["events_started"] == len(events)
    assert counters["queries_answered"] == len(events)
    assert counters["train_tasks_dropped"] == 0
    assert all(t.done for t in client.tickets)
    # Every staged transition was eventually background-trained.
    assert counters["train_steps"] > 0


def test_interleaving_changes_schedule_not_liveness() -> None:
    events = _events(60)
    traces = set()
    for seed in range(4):
        service = PrefetchService(ServeConfig(vocab_size=VOCAB, seed=7),
                                  clock=VirtualClock())
        client = ClientActor(service, events)
        sched = VirtualScheduler(service.clock, seed=seed)  # type: ignore[arg-type]
        sched.add(client)
        for actor in service.actors():
            sched.add(actor)
        sched.run_until_idle(max_steps=200_000)
        traces.add(tuple(sched.trace))
        assert all(t.done for t in client.tickets)
    assert len(traces) > 1, "interleaving seed had no scheduling effect"


def test_manifest_schema_and_atomic_write(tmp_path) -> None:
    events = _events(50)
    service = PrefetchService(
        ServeConfig(vocab_size=VOCAB, seed=9), clock=VirtualClock())
    _run(service, events)
    head = service.manifest()
    assert head["record"] == "serve_manifest"
    assert head["spec"]["kind"] == "serve_run"
    assert head["spec"]["vocab_size"] == VOCAB
    assert head["run_id"] == head["spec_hash"][:16]
    assert set(head["counters"]) == set(service.counters())
    for section in ("latency", "swap_pause"):
        assert {"p50_ms", "p99_ms", "n"} <= set(head[section])
    assert "git_sha" in head["env"]

    path = service.write_manifest(tmp_path)
    lines = [json.loads(line)
             for line in path.read_text().splitlines()]
    assert lines[0]["record"] == "serve_manifest"
    lanes = [line for line in lines[1:]]
    assert [line["record"] for line in lanes] == ["serve_lane"] * 2
    assert [line["tenant"] for line in lanes] == [0, 1]
    assert lanes[0]["misses_seen"] == 25
    # No temp droppings from the atomic write.
    assert [p.name for p in tmp_path.iterdir()] == [path.name]


def test_manifest_spec_hash_is_config_sensitive() -> None:
    a = PrefetchService(ServeConfig(vocab_size=VOCAB, seed=1),
                        clock=VirtualClock()).manifest()
    b = PrefetchService(ServeConfig(vocab_size=VOCAB, seed=2),
                        clock=VirtualClock()).manifest()
    assert a["spec_hash"] != b["spec_hash"]


def test_serve_config_validation() -> None:
    with pytest.raises(ValueError):
        ServeConfig(vocab_size=1)
    with pytest.raises(ValueError):
        ServeConfig(training="batch")
    with pytest.raises(ValueError):
        ServeConfig(page_size=1000)
    with pytest.raises(ValueError):
        ServeConfig(ring_capacity=0)
    with pytest.raises(ValueError):
        ServeConfig(min_confidence=1.5)


def _drive_threaded(service: PrefetchService, n_events: int,
                    tenants: int, timeout: float = 30.0) -> list:
    """Run the service on real threads; returns the answered tickets."""
    sched = ThreadScheduler(poll_interval=1e-4)
    for actor in service.actors():
        sched.add(actor)
    sched.start()
    tickets = []
    try:
        for i in range(n_events):
            tenant = i % tenants
            service.submit_miss(tenant, 4096 * ((3 * i + tenant) % 40), i)
            ticket = service.query(tenant)
            assert ticket.wait(timeout), \
                f"query {ticket.qid} unanswered after {timeout}s"
            tickets.append(ticket)
    finally:
        sched.stop()
    return tickets


def test_threaded_smoke() -> None:
    """The same actors on real threads: everything answered, counters
    consistent, no actor errors surfaced at stop()."""
    service = PrefetchService(ServeConfig(vocab_size=VOCAB, seed=13))
    tickets = _drive_threaded(service, 200, tenants=2)
    counters = service.counters()
    assert counters["queries_answered"] == 200
    assert counters["train_steps"] > 0
    assert all(t.done for t in tickets)


def test_training_never_blocks_queries() -> None:
    """A deliberately slow trainer (10 ms pause per step, holding no
    locks) must not surface in query latency — the §5.5 point of the
    shadow protocol, measured."""
    service = PrefetchService(
        ServeConfig(vocab_size=VOCAB, seed=17),
        faults=FaultPlan(trainer_pause_s=0.01))
    tickets = _drive_threaded(service, 120, tenants=2)
    assert service.counters()["train_steps"] > 0, \
        "trainer never ran; the assertion would be vacuous"
    latencies = sorted(t.latency() for t in tickets)
    p50 = latencies[len(latencies) // 2]
    # Generous threaded-CI bound: far under one trainer pause.
    assert p50 < 0.01, f"median query latency {p50 * 1e3:.2f} ms inherits " \
                       f"the 10 ms trainer pause — the query path blocked " \
                       f"on training"


@pytest.mark.skipif(os.environ.get("REPRO_SERVE_SOAK") != "1",
                    reason="60 s soak; set REPRO_SERVE_SOAK=1 to run")
def test_soak_fault_injected_60s() -> None:
    """CI soak leg: a minute of real-thread serving under active fault
    injection (slow trainer + forced swap races + periodic drop burst).
    Zero deadlocks (every query answered within timeout), zero actor
    errors, and the books still balance at the end."""
    service = PrefetchService(
        ServeConfig(vocab_size=VOCAB, max_staleness=32,
                    record_checksums=True, seed=23),
        faults=FaultPlan(trainer_pause_s=0.002, swap_on_query=True,
                         drop_from=5_000, drop_until=5_200))
    sched = ThreadScheduler(poll_interval=1e-4)
    for actor in service.actors():
        sched.add(actor)
    sched.start()
    deadline = time.monotonic() + 60.0
    answered = 0
    try:
        i = 0
        while time.monotonic() < deadline:
            tenant = i % 8
            service.submit_miss(tenant, 4096 * ((3 * i + tenant) % 64), i)
            ticket = service.query(tenant)
            assert ticket.wait(10.0), \
                f"deadlock: query {ticket.qid} unanswered for 10 s"
            answered += 1
            i += 1
    finally:
        sched.stop()  # raises if any actor thread died
    counters = service.counters()
    assert counters["queries_answered"] >= answered
    assert counters["forced_swaps"] > 0
    assert counters["fault_dropped"] == 200
    assert answered > 1_000, f"only {answered} queries in 60 s"
