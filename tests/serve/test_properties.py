"""Hypothesis property suites for the ring buffer and request batcher.

Both structures are exercised through actor interleavings drawn by
hypothesis (``data.draw`` is the scheduler's chooser), so a failing
schedule *shrinks* to a minimal interleaving and replays exactly.  The
pinned invariants:

ring     — conservation: ``pushed == popped + dropped + len(ring)``;
           survivors come out in FIFO order; the drop counter is exact
           (drop-oldest, never silent loss).
batcher  — exactly-once: every submitted ticket is answered exactly
           once (double resolution raises); batches respect the bound
           and FIFO order.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.batcher import RequestBatcher
from repro.serve.clock import VirtualClock
from repro.serve.loop import VirtualScheduler
from repro.serve.ring import EventRing

import pytest


class _Producer:
    name = "producer"

    def __init__(self, ring: EventRing[int], n: int) -> None:
        self.ring = ring
        self.next = 0
        self.n = n

    def step(self) -> bool:
        if self.next >= self.n:
            return False
        self.ring.push(self.next)
        self.next += 1
        return True


class _Consumer:
    name = "consumer"

    def __init__(self, ring: EventRing[int], batch: int) -> None:
        self.ring = ring
        self.batch = batch
        self.got: list[int] = []

    def step(self) -> bool:
        items = self.ring.pop_up_to(self.batch)
        if not items:
            return False
        self.got.extend(items)
        return True


@settings(max_examples=60, deadline=None)
@given(data=st.data(),
       capacity=st.integers(min_value=1, max_value=8),
       n_events=st.integers(min_value=0, max_value=60),
       batch=st.integers(min_value=1, max_value=5))
def test_ring_conservation_and_fifo(data: st.DataObject, capacity: int,
                                    n_events: int, batch: int) -> None:
    ring: EventRing[int] = EventRing(capacity)
    producer = _Producer(ring, n_events)
    consumer = _Consumer(ring, batch)
    sched = VirtualScheduler(
        VirtualClock(), seed=0,
        chooser=lambda names: data.draw(
            st.integers(0, len(names) - 1), label=f"next of {names}"))
    sched.add(producer)
    sched.add(consumer)
    sched.run_until_idle(max_steps=10_000)
    survivors = consumer.got + ring.pop_up_to(n_events)
    # Conservation: nothing is lost except what the drop counter admits.
    assert ring.pushed == n_events
    assert ring.pushed == ring.popped + ring.dropped
    assert len(survivors) == n_events - ring.dropped
    # FIFO of survivors: strictly increasing subsequence of the input.
    assert survivors == sorted(survivors)
    assert len(set(survivors)) == len(survivors)
    # Drop-oldest: whenever anything was dropped, the newest event always
    # survives over older ones.
    if n_events and ring.dropped:
        assert survivors[-1] == n_events - 1


class _Submitter:
    name = "submitter"

    def __init__(self, batcher: RequestBatcher, clock: VirtualClock,
                 n: int) -> None:
        self.batcher = batcher
        self.clock = clock
        self.n = n
        self.tickets: list = []

    def step(self) -> bool:
        if len(self.tickets) >= self.n:
            return False
        self.tickets.append(
            self.batcher.submit(len(self.tickets), self.clock.now()))
        return True


class _Answerer:
    name = "answerer"

    def __init__(self, batcher: RequestBatcher, clock: VirtualClock) -> None:
        self.batcher = batcher
        self.clock = clock
        self.batches: list[list[int]] = []

    def step(self) -> bool:
        batch = self.batcher.take_batch()
        if not batch:
            return False
        self.batches.append([t.qid for t in batch])
        for ticket in batch:
            self.batcher.answer(ticket, [ticket.qid], self.clock.now())
        return True


@settings(max_examples=60, deadline=None)
@given(data=st.data(),
       n_queries=st.integers(min_value=0, max_value=40),
       max_batch=st.integers(min_value=1, max_value=6))
def test_batcher_exactly_once_and_bounds(data: st.DataObject,
                                         n_queries: int,
                                         max_batch: int) -> None:
    clock = VirtualClock()
    batcher = RequestBatcher(max_batch)
    submitter = _Submitter(batcher, clock, n_queries)
    answerer = _Answerer(batcher, clock)
    sched = VirtualScheduler(
        clock, seed=0,
        chooser=lambda names: data.draw(
            st.integers(0, len(names) - 1), label=f"next of {names}"))
    sched.add(submitter)
    sched.add(answerer)
    sched.run_until_idle(max_steps=10_000)
    # Every submitted ticket was answered exactly once, with its own
    # payload, and the latency is well-defined and non-negative.
    assert batcher.submitted == n_queries
    assert batcher.answered == n_queries
    assert batcher.pending() == 0
    for ticket in submitter.tickets:
        assert ticket.done
        assert ticket.pages == [ticket.qid]
        assert ticket.latency() >= 0
    # Batch bound and global FIFO across batches.
    answered_order = [qid for batch in answerer.batches for qid in batch]
    assert answered_order == list(range(n_queries))
    assert all(len(batch) <= max_batch for batch in answerer.batches)


def test_ticket_double_resolution_raises() -> None:
    batcher = RequestBatcher(4)
    ticket = batcher.submit(0, 0.0)
    batcher.answer(ticket, [], 1.0)
    with pytest.raises(RuntimeError, match="resolved twice"):
        ticket.resolve([], 2.0)


def test_ring_rejects_nonpositive_capacity() -> None:
    with pytest.raises(ValueError):
        EventRing(0)


def test_batcher_rejects_nonpositive_batch() -> None:
    with pytest.raises(ValueError):
        RequestBatcher(0)
