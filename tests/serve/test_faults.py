"""The fault-injection matrix (deterministic, virtual scheduler).

Each scenario runs the *real* service actors under the seeded
:class:`VirtualScheduler` with a :class:`FaultPlan` from the service's
own constructor surface, and asserts graceful degradation through the
service's exact counters:

- trainer stalled      → every query still answered, from the stale
                          live model; zero training happened.
- ingest drop burst    → the dropped window is counted exactly; the
                          service keeps serving everything else.
- swap raced w/ query  → every answer's serving-weights checksum is a
                          member of the swap history: old or new
                          weights, never a torn mix.
- poisoned shadow      → the swap path rejects and discards it; live
                          weights stay finite; answers keep flowing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.availability import weights_finite
from repro.serve import FaultPlan, PrefetchService, ServeConfig
from repro.serve.clock import VirtualClock
from repro.serve.loop import VirtualScheduler

VOCAB = 64


class ClientActor:
    """Submits a scripted miss stream, querying after every miss."""

    name = "client"

    def __init__(self, service: PrefetchService,
                 events: list[tuple[int, int, int]]) -> None:
        self.service = service
        self.events = events
        self.cursor = 0
        self.tickets: list = []

    def step(self) -> bool:
        if self.cursor >= len(self.events):
            return False
        tenant, address, timestamp = self.events[self.cursor]
        self.cursor += 1
        self.service.submit_miss(tenant, address, timestamp)
        self.tickets.append(self.service.query(tenant))
        return True


def _events(n: int, tenants: int = 2) -> list[tuple[int, int, int]]:
    return [(i % tenants, 4096 * ((3 * i + (i % tenants)) % 40), i)
            for i in range(n)]


def _run(service: PrefetchService, events: list[tuple[int, int, int]],
         seed: int = 0) -> ClientActor:
    client = ClientActor(service, events)
    sched = VirtualScheduler(service.clock, seed=seed)  # type: ignore[arg-type]
    sched.add(client)
    for actor in service.actors():
        sched.add(actor)
    sched.run_until_idle(max_steps=200_000)
    return client


def test_trainer_stall_queries_still_answered() -> None:
    events = _events(100)
    service = PrefetchService(
        ServeConfig(vocab_size=VOCAB, seed=1),
        clock=VirtualClock(),
        faults=FaultPlan(trainer_stall_events=10**9))
    client = _run(service, events)
    counters = service.counters()
    # The trainer did nothing — and it did not take the service down.
    assert counters["train_steps"] == 0
    assert counters["queries_answered"] == len(events)
    assert all(t.done for t in client.tickets)
    # Stale model means zero weight movement from the seed clone.
    for tenant in range(2):
        lane = service.lane(tenant)
        assert lane.trained_steps == 0
        assert np.array_equal(lane.live_net().w_out,
                              service.lane(tenant).manager.shadow.w_out)


def test_drop_burst_counted_exactly_and_service_lives() -> None:
    events = _events(120)
    service = PrefetchService(
        ServeConfig(vocab_size=VOCAB, seed=2),
        clock=VirtualClock(),
        faults=FaultPlan(drop_from=30, drop_until=50))
    client = _run(service, events)
    counters = service.counters()
    assert counters["fault_dropped"] == 20
    assert counters["events_started"] == len(events) - 20
    # Degraded, not dead: every query got an answer anyway.
    assert counters["queries_answered"] == len(events)
    assert all(t.done for t in client.tickets)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_swap_raced_with_query_never_tears(seed: int) -> None:
    events = _events(80)
    service = PrefetchService(
        ServeConfig(vocab_size=VOCAB, record_checksums=True,
                    max_staleness=8, seed=3),
        clock=VirtualClock(),
        faults=FaultPlan(swap_on_query=True))
    client = _run(service, events, seed=seed)
    counters = service.counters()
    assert counters["forced_swaps"] > 0
    for tenant in range(2):
        lane = service.lane(tenant)
        history = set(lane.checksum_history)
        assert history, "no serving checksums recorded"
        for ticket in client.tickets:
            if ticket.tenant != tenant:
                continue
            assert ticket.checksum is not None
            # The answer was computed against exactly one deployed
            # weight generation — old or new, never a torn mix.
            assert ticket.checksum in history, (
                f"torn read under interleaving seed={seed}: answer "
                f"checksum {ticket.checksum} matches no swap generation")


def test_poisoned_shadow_rejected_live_stays_finite() -> None:
    events = _events(150)
    service = PrefetchService(
        ServeConfig(vocab_size=VOCAB, max_staleness=4, seed=4),
        clock=VirtualClock(),
        faults=FaultPlan(poison_after_trains=12))
    client = _run(service, events)
    counters = service.counters()
    assert counters["poison_injected"] == 1
    assert counters["swaps_rejected"] >= 1
    # The poison never reached a serving model, and serving never stopped.
    for tenant in range(2):
        lane = service.lane(tenant)
        assert weights_finite(lane.manager.live)
        assert weights_finite(lane.manager.shadow)
    assert counters["queries_answered"] == len(events)
    assert all(t.done for t in client.tickets)


def test_fault_plan_validation() -> None:
    with pytest.raises(ValueError):
        FaultPlan(trainer_stall_events=-1)
    with pytest.raises(ValueError):
        FaultPlan(drop_from=5, drop_until=2)
    with pytest.raises(ValueError):
        FaultPlan(poison_after_trains=-2)
    with pytest.raises(ValueError):
        FaultPlan(trainer_pause_s=-0.1)
    plan = FaultPlan(drop_from=2, drop_until=4)
    assert [plan.drops(i) for i in range(5)] == [
        False, False, True, True, False]


def test_ring_backpressure_drops_oldest_and_counts() -> None:
    """Over-offered ingest degrades by dropping the *oldest* events —
    and the drop counter is exact, not approximate."""
    service = PrefetchService(
        ServeConfig(vocab_size=VOCAB, ring_capacity=16, seed=5),
        clock=VirtualClock())
    for i in range(64):
        service.submit_miss(0, 4096 * (i % 30), i)
    assert service.ring.dropped == 48
    assert len(service.ring) == 16
    # The survivors are the newest 16.
    survivors = service.ring.pop_up_to(64)
    assert [e.timestamp for e in survivors] == list(range(48, 64))
