"""Robustness and failure-injection tests.

A prefetcher is advisory: no matter how badly a policy misbehaves —
flooding, garbage pages, exceptions in user-supplied code are out of
scope, but wrong *data* is not — the memory system must stay correct
(conservation of accesses, bounded residency) and the learning stack must
stay stable (no crashes on extreme addresses, full vocabularies, or
degenerate traces).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cls_prefetcher import CLSPrefetcher, CLSPrefetcherConfig
from repro.core.encoding import DeltaVocabEncoder, RegionDeltaEncoder
from repro.memsim.events import MissEvent
from repro.memsim.prefetcher import NullPrefetcher
from repro.memsim.simulator import SimConfig, baseline_misses, simulate
from repro.nn.hebbian import HebbianConfig, SparseHebbianNetwork
from repro.patterns.generators import PatternSpec, pointer_chase
from repro.patterns.trace import Trace
from repro.seeding import child_rng

#: Parent seed for every per-case RNG stream; child index = case.
SEED = 0


def page_trace(pages, name="t") -> Trace:
    return Trace(name=name, addresses=np.asarray(pages, dtype=np.int64) * 4096)


class HostilePrefetcher:
    """Returns nonsense: far pages, duplicates, floods."""

    name = "hostile"

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)

    def on_miss(self, event: MissEvent) -> list[int]:
        kind = int(self._rng.integers(0, 3))
        if kind == 0:
            return [2 ** 50 + int(self._rng.integers(0, 100))]
        if kind == 1:
            return [event.page + 1] * 50  # duplicate flood
        return list(range(event.page, event.page + 500))  # wide flood


class TestAdversarialPrefetcher:
    def test_simulator_invariants_hold(self):
        trace = page_trace(list(range(100)) * 3)
        run = simulate(trace, HostilePrefetcher(), SimConfig(capacity_pages=16))
        stats = run.stats
        assert stats.accesses == len(trace)
        assert stats.hits + stats.demand_misses == stats.accesses
        assert stats.prefetch_hits <= stats.prefetches_issued

    def test_hostile_cannot_remove_more_than_oracle(self):
        trace = pointer_chase(PatternSpec(n=600, working_set=64,
                                          element_size=4096, seed=0))
        cfg = SimConfig(memory_fraction=0.5)
        base = baseline_misses(trace, cfg)
        hostile = simulate(trace, HostilePrefetcher(), cfg)
        # hostile junk may pollute (negative) but it cannot be magic
        assert hostile.percent_misses_removed(base) < 50.0

    def test_flood_capped_per_miss(self):
        trace = page_trace(list(range(50)))
        run = simulate(trace, HostilePrefetcher(),
                       SimConfig(capacity_pages=8, max_prefetches_per_miss=4))
        assert run.stats.prefetches_issued <= 4 * run.demand_misses


class TestExtremeInputs:
    def test_cls_handles_64bit_addresses(self):
        prefetcher = CLSPrefetcher(CLSPrefetcherConfig(
            model="hebbian", vocab_size=64,
            hebbian=HebbianConfig(vocab_size=64, hidden_dim=150, seed=0)))
        base = 2 ** 55
        for i in range(50):
            address = base + i * 4096
            out = prefetcher.on_miss(MissEvent(
                index=i, address=address, page=address // 4096,
                stream_id=0, timestamp=i))
            assert all(p >= 0 for p in out)

    def test_delta_encoder_huge_negative_jump(self):
        enc = DeltaVocabEncoder(granularity=4096)
        enc.observe(2 ** 50)
        cls = enc.observe(4096)
        assert cls is not None
        # decoding that jump from a low base would go negative: refused
        assert enc.decode(cls, 4096) is None

    def test_region_encoder_scattered_regions(self):
        enc = RegionDeltaEncoder(granularity=4096, vocab_size=64)
        rng = child_rng(SEED, 0)
        for _ in range(500):
            enc.observe(int(rng.integers(0, 2 ** 48)))
        # vocabulary saturates gracefully, no crash
        assert enc.known_pairs <= 63

    def test_single_access_trace(self):
        trace = page_trace([7])
        run = simulate(trace, NullPrefetcher(), SimConfig(capacity_pages=1))
        assert run.demand_misses == 1

    def test_vocab_saturation_is_stable(self):
        """More distinct deltas than classes: everything maps to OOV and
        the prefetcher simply stops predicting, without error."""
        rng = child_rng(SEED, 1)
        pages = np.cumsum(rng.integers(1, 10_000, size=400))
        trace = page_trace(pages.tolist())
        prefetcher = CLSPrefetcher(CLSPrefetcherConfig(
            model="hebbian", vocab_size=8,
            hebbian=HebbianConfig(vocab_size=8, hidden_dim=100, seed=0)))
        run = simulate(trace, prefetcher, SimConfig(memory_fraction=0.5))
        assert run.stats.accesses == len(trace)


class TestModelStability:
    def test_hebbian_survives_long_adversarial_stream(self):
        net = SparseHebbianNetwork(HebbianConfig(vocab_size=32, hidden_dim=150,
                                                 seed=0))
        rng = child_rng(SEED, 2)
        for _ in range(3000):
            probs = net.step(int(rng.integers(0, 32)))
            assert np.isfinite(probs).all()
            assert probs.sum() == pytest.approx(1.0)
        assert np.abs(net.w_out).max() <= net.config.weight_max

    def test_lstm_survives_long_adversarial_stream(self):
        from repro.nn.lstm import LSTMConfig, OnlineLSTM

        model = OnlineLSTM(LSTMConfig(vocab_size=16, embed_dim=8, hidden_dim=16,
                                      lr=1.0, seed=0))
        rng = child_rng(SEED, 3)
        for _ in range(800):
            probs = model.step(int(rng.integers(0, 16)))
            assert np.isfinite(probs).all()
        for values in model.net.params.values():
            assert np.isfinite(values).all()


@settings(max_examples=30, deadline=None)
@given(pages=st.lists(st.integers(0, 500), min_size=1, max_size=150),
       capacity=st.integers(1, 32), degree=st.integers(0, 8))
def test_property_simulation_conserves_accesses(pages, capacity, degree):
    class FixedDegree:
        name = "fixed"

        def on_miss(self, event):
            return [event.page + i for i in range(1, degree + 1)]

    trace = page_trace(pages)
    run = simulate(trace, FixedDegree(), SimConfig(capacity_pages=capacity))
    assert run.stats.accesses == len(pages)
    assert run.stats.hits + run.stats.demand_misses == len(pages)
    assert 0 <= run.stats.miss_rate <= 1


@settings(max_examples=25, deadline=None)
@given(classes=st.lists(st.integers(0, 15), min_size=2, max_size=120))
def test_property_hebbian_probabilities_valid(classes):
    net = SparseHebbianNetwork(HebbianConfig(vocab_size=16, hidden_dim=100,
                                             seed=0))
    for class_id in classes:
        probs = net.step(class_id)
        assert probs.shape == (16,)
        assert probs.sum() == pytest.approx(1.0)
        assert (probs >= 0).all()
