"""Cross-module integration tests: the paper's story end to end."""

from __future__ import annotations

from repro.baselines import StridePrefetcher
from repro.core import CLSPrefetcher, CLSPrefetcherConfig
from repro.memsim import SimConfig, baseline_misses, simulate
from repro.nn.hebbian import HebbianConfig
from repro.patterns import PatternSpec, pointer_chase, stride


def hebbian_prefetcher(vocab: int = 128, **overrides) -> CLSPrefetcher:
    defaults = dict(
        model="hebbian",
        vocab_size=vocab,
        hebbian=HebbianConfig(vocab_size=vocab, hidden_dim=300, seed=0),
        prefetch_length=2,
        prefetch_width=2,
    )
    defaults.update(overrides)
    return CLSPrefetcher(CLSPrefetcherConfig(**defaults))


class TestLearnedVsClassic:
    """§1's motivation: rule-based prefetchers die on irregular patterns."""

    def test_stride_pattern_both_work(self):
        trace = stride(PatternSpec(n=1500, working_set=120, element_size=4096))
        cfg = SimConfig(memory_fraction=0.5)
        base = baseline_misses(trace, cfg)
        classic = simulate(trace, StridePrefetcher(degree=2), cfg)
        learned = simulate(trace, hebbian_prefetcher(), cfg)
        assert classic.percent_misses_removed(base) > 20.0
        assert learned.percent_misses_removed(base) > 20.0

    def test_pointer_chase_only_learned_works(self):
        trace = pointer_chase(PatternSpec(n=2000, working_set=100,
                                          element_size=4096, seed=1))
        cfg = SimConfig(memory_fraction=0.5)
        base = baseline_misses(trace, cfg)
        classic = simulate(trace, StridePrefetcher(degree=2), cfg)
        learned = simulate(trace, hebbian_prefetcher(), cfg)
        assert classic.percent_misses_removed(base) < 5.0
        assert learned.percent_misses_removed(base) > 15.0


class TestPhasedWorkload:
    """A workload that returns to an earlier phase: replay pays off."""

    def test_replay_helps_on_repeating_phases(self):
        # A -> B -> A, each phase thrashing its own 150-page working set
        # against a 120-page memory (fraction 0.4 of the 300-page total).
        trace_a = pointer_chase(PatternSpec(n=1500, working_set=150,
                                            element_size=4096, seed=0))
        trace_b = stride(PatternSpec(n=1500, working_set=150, element_size=4096,
                                     base=0x9000_0000, seed=1))
        trace = trace_a.concat(trace_b).concat(trace_a)

        cfg = SimConfig(memory_fraction=0.4)
        base = baseline_misses(trace, cfg)
        with_replay = simulate(
            trace, hebbian_prefetcher(replay_policy="full", replay_per_step=2),
            cfg)
        without = simulate(trace, hebbian_prefetcher(replay_policy=None), cfg)
        assert with_replay.percent_misses_removed(base) > 20.0
        # replay must never hurt the repeated-phase workload materially
        assert (with_replay.percent_misses_removed(base)
                >= without.percent_misses_removed(base) - 2.0)


class TestDeterminism:
    def test_full_pipeline_reproducible(self):
        trace = pointer_chase(PatternSpec(n=800, working_set=60,
                                          element_size=4096, seed=5))
        cfg = SimConfig(memory_fraction=0.5)
        results = []
        for _ in range(2):
            run = simulate(trace, hebbian_prefetcher(), cfg)
            results.append((run.demand_misses, run.stats.prefetches_issued,
                            run.stats.prefetch_hits))
        assert results[0] == results[1]


class TestModelsAgree:
    """Figure 5's comparability claim at test scale."""

    def test_hebbian_comparable_to_lstm_on_stride(self):
        from repro.nn.lstm import LSTMConfig

        trace = stride(PatternSpec(n=1200, working_set=100, element_size=4096))
        cfg = SimConfig(memory_fraction=0.5)
        base = baseline_misses(trace, cfg)
        hebbian = simulate(trace, hebbian_prefetcher(observe_hits=True), cfg)
        lstm = simulate(trace, CLSPrefetcher(CLSPrefetcherConfig(
            model="lstm", vocab_size=128, observe_hits=True,
            lstm=LSTMConfig(vocab_size=128, embed_dim=16, hidden_dim=32,
                            window=4, lr=1.0, seed=0),
            prefetch_length=2, prefetch_width=2)), cfg)
        h = hebbian.percent_misses_removed(base)
        l = lstm.percent_misses_removed(base)
        assert h > 50.0 and l > 50.0
        assert abs(h - l) < 15.0  # comparable, per Figure 5
