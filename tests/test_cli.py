"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "-o", "x.npz"])

    def test_generate_sources_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--pattern", "stride",
                                       "--app", "mcf", "-o", "x.npz"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "--pattern", "stride"])
        assert args.model == "hebbian"
        assert args.length == 2
        assert args.replay == "full"

    def test_unknown_pattern_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--pattern", "zigzag",
                                       "-o", "x.npz"])

    def test_fleet_jobs_defaults_to_autodetect(self):
        args = build_parser().parse_args(["fleet"])
        assert args.jobs is None
        args = build_parser().parse_args(["fleet", "--jobs", "3"])
        assert args.jobs == 3


class TestCommands:
    def test_generate_and_simulate_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "trace.npz"
        assert main(["generate", "--pattern", "pointer_chase", "--n", "800",
                     "--working-set", "60", "-o", str(out)]) == 0
        assert out.exists()
        assert main(["simulate", "--trace", str(out), "--model", "hebbian",
                     "--vocab", "128", "--n", "800"]) == 0
        output = capsys.readouterr().out
        assert "misses removed %" in output
        assert "cls-hebbian" in output

    def test_simulate_inline_app_with_baseline_model(self, capsys):
        assert main(["simulate", "--app", "mcf", "--n", "3000",
                     "--model", "stride"]) == 0
        assert "stride" in capsys.readouterr().out

    def test_simulate_direct_mode_page_encoder(self, capsys):
        assert main(["simulate", "--pattern", "pointer_chase", "--n", "1500",
                     "--working-set", "80", "--model", "hebbian",
                     "--encoder", "page", "--mode", "direct",
                     "--length", "3"]) == 0
        assert "cls-hebbian" in capsys.readouterr().out

    def test_simulate_none_model(self, capsys):
        assert main(["simulate", "--pattern", "stride", "--n", "500",
                     "--model", "none"]) == 0
        assert "none" in capsys.readouterr().out

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "pointer_chase" in capsys.readouterr().out

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        output = capsys.readouterr().out
        assert "hebbian" in output and "49,000" in output

    def test_experiment_fig2(self, capsys):
        assert main(["experiment", "fig2"]) == 0
        assert "lstm-fp32-1t" in capsys.readouterr().out

    def test_fleet_learned_lanes(self, capsys):
        assert main(["fleet", "--tenants", "3", "--n", "400",
                     "--working-set", "60", "--model", "hebbian",
                     "--vocab", "32", "--backend", "numpy"]) == 0
        output = capsys.readouterr().out
        assert "3 tenants" in output
        assert "hebbian" in output

    def test_fleet_jobs_sharded_with_manifest(self, tmp_path, capsys):
        assert main(["fleet", "--tenants", "4", "--n", "400",
                     "--working-set", "60", "--model", "hebbian",
                     "--vocab", "32", "--backend", "numpy",
                     "--jobs", "2",
                     "--manifest-dir", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "2 jobs" in output
        manifests = list(tmp_path.glob("fleet-4x-2j-*.jsonl"))
        assert len(manifests) == 1

    def test_serve_run_lockstep_with_manifest(self, tmp_path, capsys):
        assert main(["serve", "run", "--tenants", "2", "--n", "150",
                     "--vocab", "32", "--seed", "3",
                     "--manifest-dir", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "2 tenants" in output
        assert "lockstep" in output
        assert "queries_answered" in output
        manifests = list(tmp_path.glob("serve-2x.jsonl"))
        assert len(manifests) == 1

    def test_serve_run_threaded(self, capsys):
        assert main(["serve", "run", "--tenants", "2", "--n", "80",
                     "--vocab", "32", "--threaded"]) == 0
        output = capsys.readouterr().out
        assert "threaded" in output

    def test_serve_run_scalar_matches_shape(self, capsys):
        assert main(["serve", "run", "--tenants", "2", "--n", "80",
                     "--vocab", "32", "--scalar"]) == 0
        output = capsys.readouterr().out
        assert "events_processed" in output

    def test_profile_wraps_any_subcommand(self, capsys):
        assert main(["--profile", "simulate", "--pattern", "stride",
                     "--n", "500", "--model", "stride"]) == 0
        output = capsys.readouterr().out
        assert "misses removed %" in output  # the run itself still prints
        assert "cProfile: top 25 by cumulative time" in output
        assert "cumtime" in output  # pstats table made it to stdout
