"""Cross-feature matrix: every CLS configuration combination must run.

The prefetcher exposes many orthogonal knobs (model family x encoder x
prediction mode x recall x availability x replay x training policy).
Individually each is tested elsewhere; this grid catches interactions —
a feature that breaks only when combined with another.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.cls_prefetcher import CLSPrefetcher, CLSPrefetcherConfig
from repro.memsim.simulator import SimConfig, baseline_misses, simulate
from repro.nn.hebbian import HebbianConfig
from repro.nn.lstm import LSTMConfig
from repro.patterns.generators import PatternSpec, pointer_chase

TRACE = pointer_chase(PatternSpec(n=600, working_set=60, element_size=4096,
                                  seed=7))
SIM = SimConfig(memory_fraction=0.5)

MODELS = ("hebbian", "lstm")
ENCODERS = ("delta", "page", "region")
MODES = ("rollout", "direct")
TOGGLES = (
    {},                                        # plain
    {"recall": True},
    {"availability": True},
    {"observe_hits": True, "trigger_on_hits": True},
    {"replay_policy": "prototype", "replay_per_step": 2},
    {"training": "confidence", "training_kwargs": {"skip_above": 0.8}},
)


def valid(model: str, encoder: str, mode: str) -> bool:
    # direct mode requires absolute (page) encoding
    return not (mode == "direct" and encoder != "page")


CASES = [
    (model, encoder, mode, i)
    for model, encoder, mode in itertools.product(MODELS, ENCODERS, MODES)
    if valid(model, encoder, mode)
    for i in range(len(TOGGLES))
]


@pytest.mark.parametrize("model,encoder,mode,toggle_index", CASES)
def test_combination_runs_and_is_sane(model, encoder, mode, toggle_index):
    toggles = dict(TOGGLES[toggle_index])
    if model == "hebbian":
        extra = {"hebbian": HebbianConfig(vocab_size=96, hidden_dim=120,
                                          seed=0)}
    else:
        extra = {"lstm": LSTMConfig(vocab_size=96, embed_dim=8, hidden_dim=12,
                                    window=2, lr=1.0, seed=0)}
    prefetcher = CLSPrefetcher(CLSPrefetcherConfig(
        model=model, vocab_size=96, encoder=encoder, prediction_mode=mode,
        prefetch_length=2, prefetch_width=2, seed=0, **extra, **toggles))

    baseline = baseline_misses(TRACE, SIM)
    run = simulate(TRACE, prefetcher, SIM)

    stats = run.stats
    assert stats.accesses == len(TRACE)
    assert stats.hits + stats.demand_misses == stats.accesses
    assert stats.prefetch_hits <= stats.prefetches_issued
    assert prefetcher.stats.misses_seen == run.demand_misses
    # pollution bounded: even a bad combination cannot more than double
    # the baseline misses at width 2 / length 2
    assert run.demand_misses <= 2 * baseline.demand_misses
