"""Tests for the self-monitored accuracy gate (§5.2 selectivity)."""

from __future__ import annotations

import pytest

from repro.core.cls_prefetcher import CLSPrefetcher, CLSPrefetcherConfig
from repro.harness.models import experiment_hebbian_config
from repro.memsim.events import MissEvent


def make(min_accuracy: float, width: int = 1, alpha: float = 0.1,
         **overrides) -> CLSPrefetcher:
    # the 500-hidden experiment config: at smaller hidden sizes too few
    # connected-active weights carry the readout and context jitter
    # dominates (see HebbianConfig docs on sparsity)
    defaults = dict(
        model="hebbian", vocab_size=64, encoder="page",
        hebbian=experiment_hebbian_config(64, seed=0),
        min_accuracy=min_accuracy, accuracy_ema_alpha=alpha,
        prefetch_width=width, replay_policy=None, phase_detection=False,
    )
    defaults.update(overrides)
    return CLSPrefetcher(CLSPrefetcherConfig(**defaults))


def miss(index: int, page: int) -> MissEvent:
    return MissEvent(index=index, address=page * 4096, page=page,
                     stream_id=0, timestamp=index * 100)


class TestValidation:
    def test_bounds(self):
        with pytest.raises(ValueError):
            CLSPrefetcherConfig(min_accuracy=1.5)
        with pytest.raises(ValueError):
            CLSPrefetcherConfig(accuracy_ema_alpha=0.0)


class TestGate:
    def test_starts_suppressed(self):
        prefetcher = make(min_accuracy=0.5)
        out = []
        for i in range(5):
            out = prefetcher.on_miss(miss(i, (i % 4) + 1))
        assert out == []
        assert prefetcher.stats.suppressed_low_confidence > 0

    def test_opens_once_model_tracks_stream(self):
        prefetcher = make(min_accuracy=0.5)
        cycle = [1, 5, 9, 13]
        out: list[int] = []
        for i in range(200):
            out = prefetcher.on_miss(miss(i, cycle[i % 4]))
        assert prefetcher.accuracy_ema > 0.5
        assert out  # prefetching flows once accuracy is demonstrated

    def test_stays_closed_on_random_stream(self):
        import numpy as np

        rng = np.random.default_rng(0)
        prefetcher = make(min_accuracy=0.5)
        emitted = 0
        for i in range(300):
            emitted += len(prefetcher.on_miss(miss(i, int(rng.integers(1, 60)))))
        assert prefetcher.accuracy_ema < 0.3
        assert emitted == 0

    def test_width_aware_coverage(self):
        """A stream whose next page is one of two candidates: top-1
        coverage hovers near 0.5, top-2 coverage near 1 — so the same
        threshold closes a width-1 prefetcher and opens a width-2 one."""
        import numpy as np

        rng = np.random.default_rng(1)
        narrow = make(min_accuracy=0.7, width=1)
        wide = make(min_accuracy=0.7, width=2)
        page = 1
        for i in range(400):
            nxt = {1: (5, 9), 5: (1, 9), 9: (1, 5)}[page]
            page = nxt[int(rng.integers(0, 2))]
            narrow.on_miss(miss(i, page))
            wide.on_miss(miss(i, page))
        assert narrow.accuracy_ema < 0.7
        assert wide.accuracy_ema > 0.7

    def test_disabled_by_default(self):
        prefetcher = make(min_accuracy=0.0)
        out = []
        for i in range(30):
            out = prefetcher.on_miss(miss(i, (i % 4) + 1))
        assert out  # no gating at min_accuracy 0
