"""Tests for the miss-history window (§5.2)."""

from __future__ import annotations

import pytest

from repro.core.history import MissHistory, MissRecord


def rec(class_id: int, ts: int = 0) -> MissRecord:
    return MissRecord(class_id=class_id, address=class_id * 4096, timestamp=ts)


class TestWindow:
    def test_rejects_tiny_capacity(self):
        with pytest.raises(ValueError):
            MissHistory(capacity=1)

    def test_bounded(self):
        h = MissHistory(capacity=3)
        for i in range(10):
            h.push(rec(i))
        assert len(h) == 3
        assert h.classes() == [7, 8, 9]

    def test_last_n(self):
        h = MissHistory(capacity=5)
        for i in range(4):
            h.push(rec(i))
        assert [r.class_id for r in h.last(2)] == [2, 3]
        assert h.last(0) == []

    def test_latest(self):
        h = MissHistory(capacity=4)
        assert h.latest() is None
        h.push(rec(9))
        assert h.latest().class_id == 9

    def test_clear(self):
        h = MissHistory(capacity=4)
        h.push(rec(1))
        h.clear()
        assert len(h) == 0


class TestTransitionPairs:
    def test_lag_one(self):
        h = MissHistory(capacity=4)
        h.push(rec(1))
        h.push(rec(2))
        src, dst = h.transition_pair(lag=1)
        assert (src.class_id, dst.class_id) == (1, 2)

    def test_lag_beyond_window_none(self):
        h = MissHistory(capacity=4)
        h.push(rec(1))
        assert h.transition_pair(lag=1) is None

    def test_larger_lag(self):
        h = MissHistory(capacity=8)
        for i in range(5):
            h.push(rec(i))
        src, dst = h.transition_pair(lag=3)
        assert (src.class_id, dst.class_id) == (1, 4)

    def test_rejects_zero_lag(self):
        with pytest.raises(ValueError):
            MissHistory(capacity=4).transition_pair(lag=0)


class TestTiming:
    def test_mean_gap(self):
        h = MissHistory(capacity=8)
        for i, ts in enumerate((0, 100, 300)):
            h.push(rec(i, ts))
        assert h.mean_inter_miss_ns() == pytest.approx(150.0)

    def test_gap_none_when_too_few(self):
        h = MissHistory(capacity=8)
        h.push(rec(0, 5))
        assert h.mean_inter_miss_ns() is None
