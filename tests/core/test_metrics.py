"""Tests for the metrics containers."""

from __future__ import annotations

import pytest

from repro.core.metrics import (
    ConfidenceCurve,
    InterferenceSummary,
    PrefetchSummary,
    summarize_prefetch,
)
from repro.memsim.pagecache import CacheStats
from repro.memsim.simulator import SimConfig, SimResult


def result(trace: str, name: str, misses: int) -> SimResult:
    stats = CacheStats(accesses=100, demand_misses=misses,
                       hits=100 - misses)
    return SimResult(trace_name=trace, prefetcher_name=name,
                     capacity_pages=10, stats=stats, config=SimConfig())


class TestConfidenceCurve:
    def test_append_and_final(self):
        curve = ConfidenceCurve(label="x")
        curve.append(10, 0.5)
        curve.append(20, 0.8)
        assert curve.final() == 0.8
        assert curve.minimum() == 0.5
        steps, values = curve.as_arrays()
        assert steps.tolist() == [10, 20]
        assert values.tolist() == [0.5, 0.8]

    def test_empty(self):
        curve = ConfidenceCurve(label="x")
        assert curve.final() == 0.0 and curve.minimum() == 0.0


class TestInterferenceSummary:
    def test_forgetting(self):
        s = InterferenceSummary("a", "b", conf_a_before=0.9, conf_a_after=0.2,
                                conf_b_after=0.8, replay=False)
        assert s.forgetting == pytest.approx(0.7)


class TestPrefetchSummary:
    def test_percent_removed(self):
        s = PrefetchSummary("t", "p", misses_baseline=100,
                            misses_with_prefetch=40, prefetch_accuracy=0.9,
                            coverage=0.6)
        assert s.percent_misses_removed == pytest.approx(60.0)

    def test_zero_baseline(self):
        s = PrefetchSummary("t", "p", 0, 0, 0.0, 0.0)
        assert s.percent_misses_removed == 0.0

    def test_negative_when_worse(self):
        s = PrefetchSummary("t", "p", 100, 130, 0.1, 0.0)
        assert s.percent_misses_removed == pytest.approx(-30.0)


class TestSummarize:
    def test_pairs_runs(self):
        base = result("app", "none", 80)
        run = result("app", "cls-hebbian", 20)
        s = summarize_prefetch(base, run)
        assert s.percent_misses_removed == pytest.approx(75.0)
        assert s.prefetcher_name == "cls-hebbian"

    def test_mismatched_traces_rejected(self):
        with pytest.raises(ValueError):
            summarize_prefetch(result("a", "none", 10), result("b", "x", 5))
