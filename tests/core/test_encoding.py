"""Tests for the miss-stream encoders (§5.3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoding import (
    OOV_CLASS,
    DeltaVocabEncoder,
    PageVocabEncoder,
    RegionDeltaEncoder,
    classify_addresses,
    make_encoder,
)


class TestDeltaVocabEncoder:
    def test_first_observation_returns_none(self):
        enc = DeltaVocabEncoder(granularity=64)
        assert enc.observe(1000) is None

    def test_same_delta_same_class(self):
        enc = DeltaVocabEncoder(granularity=64)
        enc.observe(0)
        c1 = enc.observe(64)
        enc.observe(128)
        # third observation: another +64 delta
        assert enc.observe(192) == c1

    def test_different_deltas_different_classes(self):
        enc = DeltaVocabEncoder(granularity=64)
        enc.observe(0)
        c1 = enc.observe(64)
        c2 = enc.observe(64 + 128)
        assert c1 != c2

    def test_decode_roundtrip(self):
        enc = DeltaVocabEncoder(granularity=64)
        enc.observe(0)
        cls = enc.observe(192)  # delta +3 units
        assert enc.decode(cls, 640) == 640 + 192

    def test_negative_delta_roundtrip(self):
        enc = DeltaVocabEncoder(granularity=64)
        enc.observe(640)
        cls = enc.observe(512)
        assert enc.decode(cls, 1280) == 1280 - 128

    def test_decode_unknown_class_none(self):
        enc = DeltaVocabEncoder(granularity=64)
        assert enc.decode(5, 1000) is None
        assert enc.decode(OOV_CLASS, 1000) is None

    def test_decode_negative_address_none(self):
        enc = DeltaVocabEncoder(granularity=64)
        enc.observe(64 * 100)
        cls = enc.observe(0)  # delta -100
        assert enc.decode(cls, 0) is None

    def test_vocab_cap_maps_to_oov(self):
        enc = DeltaVocabEncoder(vocab_size=4, granularity=64)  # 3 real classes
        enc.observe(0)
        seen = [enc.observe(64 * (i + 1) * (i + 2) // 2) for i in range(6)]
        assert OOV_CLASS in seen
        assert enc.known_deltas == 3

    def test_reset_stream_keeps_vocab(self):
        enc = DeltaVocabEncoder(granularity=64)
        enc.observe(0)
        c1 = enc.observe(64)
        enc.reset_stream()
        assert enc.observe(1000) is None
        assert enc.observe(1064) == c1

    def test_repeated_unit_collapsed(self):
        enc = DeltaVocabEncoder(granularity=4096)
        enc.observe(0)
        assert enc.observe(100) is None          # same page: no transition
        cls = enc.observe(4096)                  # now a +1-page transition
        assert cls is not None
        assert enc.decode(cls, 4096) == 2 * 4096

    def test_collapse_disabled_keeps_zero_delta(self):
        enc = DeltaVocabEncoder(granularity=4096, collapse_repeats=False)
        enc.observe(0)
        assert enc.observe(100) is not None      # delta-0 class

    def test_rejects_tiny_vocab(self):
        with pytest.raises(ValueError):
            DeltaVocabEncoder(vocab_size=1)

    def test_rejects_bad_granularity(self):
        with pytest.raises(ValueError):
            DeltaVocabEncoder(granularity=100)


class TestPageVocabEncoder:
    def test_same_page_same_class(self):
        enc = PageVocabEncoder(granularity=4096)
        c1 = enc.observe(4096)
        enc.observe(9 * 4096)
        c2 = enc.observe(4096 + 100)  # same page as the first observation
        assert c1 == c2

    def test_repeated_page_collapsed(self):
        enc = PageVocabEncoder(granularity=4096)
        assert enc.observe(4096) is not None
        assert enc.observe(4096 + 100) is None  # same unit, collapsed
        enc2 = PageVocabEncoder(granularity=4096, collapse_repeats=False)
        enc2.observe(4096)
        assert enc2.observe(4096 + 100) is not None

    def test_decode_is_absolute(self):
        enc = PageVocabEncoder(granularity=4096)
        cls = enc.observe(3 * 4096 + 5)
        assert enc.decode(cls, base_address=0) == 3 * 4096

    def test_cap_maps_to_oov(self):
        enc = PageVocabEncoder(vocab_size=3, granularity=4096)
        enc.observe(0)
        enc.observe(4096)
        assert enc.observe(2 * 4096) == OOV_CLASS

    def test_no_none_on_first(self):
        enc = PageVocabEncoder()
        assert enc.observe(0) is not None


class TestRegionDeltaEncoder:
    PAGE = 4096
    REGION = 4096 * 4096  # one region = 2**12 pages

    def test_first_touch_of_region_returns_none(self):
        enc = RegionDeltaEncoder(granularity=self.PAGE)
        assert enc.observe(self.REGION * 2) is None
        assert enc.observe(self.REGION * 5) is None  # new region again

    def test_within_region_delta(self):
        enc = RegionDeltaEncoder(granularity=self.PAGE)
        base = self.REGION * 2
        enc.observe(base)
        cls = enc.observe(base + self.PAGE)
        assert cls is not None
        assert enc.decode(cls, base_address=0) == base + 2 * self.PAGE

    def test_interleaved_streams_stay_clean(self):
        """Alternating accesses to two regions produce each region's own
        delta classes, not cross-region garbage."""
        enc = RegionDeltaEncoder(granularity=self.PAGE)
        a, b = self.REGION * 1, self.REGION * 8
        enc.observe(a)
        enc.observe(b)
        cls_a1 = enc.observe(a + self.PAGE)       # A: +1 page
        cls_b1 = enc.observe(b + 2 * self.PAGE)   # B: +2 pages
        cls_a2 = enc.observe(a + 2 * self.PAGE)   # A: +1 page again
        cls_b2 = enc.observe(b + 4 * self.PAGE)   # B: +2 pages again
        assert cls_a1 == cls_a2
        assert cls_b1 == cls_b2
        assert cls_a1 != cls_b1

    def test_same_delta_different_regions_distinct_classes(self):
        enc = RegionDeltaEncoder(granularity=self.PAGE)
        a, b = self.REGION * 1, self.REGION * 8
        enc.observe(a)
        enc.observe(b)
        assert enc.observe(a + self.PAGE) != enc.observe(b + self.PAGE)

    def test_decode_tracks_region_cursor(self):
        enc = RegionDeltaEncoder(granularity=self.PAGE)
        base = self.REGION * 3
        enc.observe(base)
        cls = enc.observe(base + self.PAGE)
        enc.observe(base + 5 * self.PAGE)  # cursor advances
        assert enc.decode(cls, 0) == base + 6 * self.PAGE

    def test_decode_refuses_region_escape(self):
        enc = RegionDeltaEncoder(granularity=self.PAGE, region_bits=4)
        base = 16 * self.PAGE  # region of 16 pages, cursor at its start
        enc.observe(base + 15 * self.PAGE)
        cls = enc.observe(base + 15 * self.PAGE)  # collapsed
        assert cls is None
        enc2 = RegionDeltaEncoder(granularity=self.PAGE, region_bits=4)
        enc2.observe(base)
        big = enc2.observe(base + 15 * self.PAGE)  # delta +15 within region
        # cursor now at page 31 of the region; +15 would escape it
        assert enc2.decode(big, 0) is None

    def test_repeats_collapsed_per_region(self):
        enc = RegionDeltaEncoder(granularity=self.PAGE)
        base = self.REGION * 2
        enc.observe(base)
        assert enc.observe(base + 100) is None  # same page

    def test_vocab_cap_oov(self):
        enc = RegionDeltaEncoder(vocab_size=3, granularity=self.PAGE)
        base = self.REGION * 2
        enc.observe(base)
        seen = [enc.observe(base + self.PAGE * (i + 1) * (i + 2) // 2)
                for i in range(5)]
        assert OOV_CLASS in seen

    def test_reset_stream_keeps_vocab(self):
        enc = RegionDeltaEncoder(granularity=self.PAGE)
        base = self.REGION * 2
        enc.observe(base)
        cls = enc.observe(base + self.PAGE)
        enc.reset_stream()
        assert enc.observe(base + 9 * self.PAGE) is None  # cursor forgotten
        assert enc.observe(base + 10 * self.PAGE) == cls  # vocab kept

    def test_validation(self):
        with pytest.raises(ValueError):
            RegionDeltaEncoder(vocab_size=1)
        with pytest.raises(ValueError):
            RegionDeltaEncoder(region_bits=0)


class TestHelpers:
    def test_make_encoder_kinds(self):
        assert isinstance(make_encoder("delta"), DeltaVocabEncoder)
        assert isinstance(make_encoder("page"), PageVocabEncoder)
        assert isinstance(make_encoder("region"), RegionDeltaEncoder)
        with pytest.raises(ValueError):
            make_encoder("onehot")

    def test_classify_addresses_drops_leading_none(self):
        enc = DeltaVocabEncoder(granularity=64)
        classes = classify_addresses(enc, [0, 64, 128])
        assert len(classes) == 2


@settings(max_examples=40, deadline=None)
@given(units=st.lists(st.integers(0, 5000), min_size=2, max_size=60))
def test_property_delta_decode_inverts_observe(units):
    enc = DeltaVocabEncoder(vocab_size=4096, granularity=64)
    addresses = [u * 64 for u in units]
    enc.observe(addresses[0])
    for prev, cur in zip(addresses, addresses[1:]):
        cls = enc.observe(cur)
        if cur == prev:
            assert cls is None  # collapsed repeat
            continue
        decoded = enc.decode(cls, prev)
        assert decoded == cur
