"""Tests for direct lag-L prediction and prefetch chaining (§5.2)."""

from __future__ import annotations

import pytest

from repro.core.cls_prefetcher import CLSPrefetcher, CLSPrefetcherConfig
from repro.memsim.events import MissEvent
from repro.memsim.simulator import SimConfig, baseline_misses, simulate
from repro.nn.hebbian import HebbianConfig
from repro.patterns.generators import PatternSpec, stride


def direct_config(**overrides) -> CLSPrefetcherConfig:
    defaults = dict(
        model="hebbian", vocab_size=128, encoder="page",
        hebbian=HebbianConfig(vocab_size=128, hidden_dim=200, seed=0),
        prediction_mode="direct", prefetch_length=3, prefetch_width=1,
    )
    defaults.update(overrides)
    return CLSPrefetcherConfig(**defaults)


def miss(index: int, page: int) -> MissEvent:
    return MissEvent(index=index, address=page * 4096, page=page,
                     stream_id=0, timestamp=index * 100)


class TestValidation:
    def test_direct_requires_page_encoder(self):
        with pytest.raises(ValueError, match="page"):
            CLSPrefetcherConfig(prediction_mode="direct", encoder="delta")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="prediction_mode"):
            CLSPrefetcherConfig(prediction_mode="beam")

    def test_chaining_requires_observe_hits(self):
        with pytest.raises(ValueError, match="observe_hits"):
            CLSPrefetcherConfig(trigger_on_hits=True, observe_hits=False)


class TestDirectPrediction:
    def test_learns_lag_l_mapping(self):
        """On a cyclic page walk, direct mode prefetches the page L ahead."""
        prefetcher = CLSPrefetcher(direct_config(prefetch_length=3))
        cycle = [10, 20, 30, 40, 50, 60]
        predictions: list[int] = []
        for i in range(120):
            page = cycle[i % len(cycle)]
            predictions = prefetcher.on_miss(miss(i, page))
        # last miss was cycle[119 % 6] = 60; 3 ahead is 30
        assert predictions == [30]

    def test_trains_on_lag_pairs_only_after_warmup(self):
        prefetcher = CLSPrefetcher(direct_config(prefetch_length=4))
        for i in range(4):
            prefetcher.on_miss(miss(i, i + 1))
        assert prefetcher.stats.trained_steps == 0  # history too shallow
        prefetcher.on_miss(miss(4, 5))
        assert prefetcher.stats.trained_steps == 1

    def test_direct_beats_rollout_under_delay(self):
        """A landing delay beyond the rollout horizon favours direct mode
        (the A9 ablation at test scale)."""
        from repro.harness.ablations import ablation_prediction_mode

        rows = ablation_prediction_mode(n_accesses=5_000, delays=(6,))
        by_mode = {r["mode"]: r["misses_removed_pct"] for r in rows}
        assert by_mode["direct L=6"] > by_mode["rollout L=4"] + 4.0
        assert by_mode["direct L=6 + chain"] > by_mode["direct L=6"]


class TestChaining:
    def test_hits_issue_prefetches(self):
        trace = stride(PatternSpec(n=1000, working_set=120, element_size=4096))
        cfg = SimConfig(memory_fraction=0.5)
        base = baseline_misses(trace, cfg)

        def run(chain: bool) -> float:
            prefetcher = CLSPrefetcher(direct_config(
                vocab_size=256,
                hebbian=HebbianConfig(vocab_size=256, hidden_dim=300, seed=0),
                prefetch_length=2, min_confidence=0.25,
                observe_hits=chain, trigger_on_hits=chain))
            return simulate(trace, prefetcher, cfg).percent_misses_removed(base)

        assert run(True) > run(False) + 10.0

    def test_on_access_returns_none_without_chaining(self):
        from repro.memsim.events import AccessEvent

        prefetcher = CLSPrefetcher(direct_config(observe_hits=True))
        prefetcher.on_miss(miss(0, 1))
        result = prefetcher.on_access(AccessEvent(
            index=1, address=2 * 4096, page=2, stream_id=0, timestamp=100,
            hit=True))
        assert result is None
