"""Tests for online phase detection (§5.4)."""

from __future__ import annotations

import pytest

from repro.core.phase_detect import OnlinePhaseDetector, cosine_similarity
import numpy as np


class TestCosine:
    def test_identical(self):
        v = np.array([1.0, 2.0])
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine_similarity(np.array([1.0, 0.0]),
                                 np.array([0.0, 1.0])) == pytest.approx(0.0)

    def test_zero_vector(self):
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0


class TestDetector:
    def make(self, **kwargs) -> OnlinePhaseDetector:
        defaults = dict(vocab_size=16, window=16, similarity_threshold=0.6)
        defaults.update(kwargs)
        return OnlinePhaseDetector(**defaults)

    def test_warmup_returns_unknown(self):
        det = self.make()
        assert det.observe(1) == -1

    def test_single_pattern_single_phase(self):
        det = self.make()
        for _ in range(60):
            det.observe(3)
        assert det.n_phases == 1
        assert det.current_phase == 0

    def test_pattern_switch_creates_new_phase(self):
        det = self.make()
        for _ in range(40):
            det.observe(1)
        for i in range(40):
            det.observe(8 + (i % 4))
        assert det.n_phases >= 2
        assert det.transitions >= 1

    def test_returning_pattern_reuses_phase(self):
        det = self.make()
        for _ in range(40):
            det.observe(1)
        first_phase = det.current_phase
        for i in range(40):
            det.observe(8 + (i % 4))
        for _ in range(40):
            det.observe(1)
        assert det.current_phase == first_phase

    def test_max_phases_cap(self):
        det = self.make(max_phases=2, window=8)
        for block in range(6):
            for _ in range(24):
                det.observe((block * 2) % 16)
        assert det.n_phases <= 2

    def test_rejects_out_of_vocab(self):
        with pytest.raises(ValueError):
            self.make().observe(99)

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlinePhaseDetector(vocab_size=0)
        with pytest.raises(ValueError):
            OnlinePhaseDetector(vocab_size=4, similarity_threshold=1.0)
