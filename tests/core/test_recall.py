"""Tests for the hippocampal recall fast path (Figure 4)."""

from __future__ import annotations

import pytest

from repro.core.cls_prefetcher import CLSPrefetcher, CLSPrefetcherConfig
from repro.core.recall import HippocampalRecall, RecallConfig
from repro.memsim.events import MissEvent
from repro.memsim.simulator import SimConfig, baseline_misses, simulate
from repro.nn.hebbian import HebbianConfig
from repro.patterns.generators import PatternSpec, pointer_chase


class TestRecallConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RecallConfig(code_k=0)
        with pytest.raises(ValueError):
            RecallConfig(code_k=600, code_dim=512)
        with pytest.raises(ValueError):
            RecallConfig(value_k=0)
        with pytest.raises(ValueError):
            RecallConfig(completion_threshold=0.0)


class TestHippocampalRecall:
    def test_one_shot_store_and_recall(self):
        recall = HippocampalRecall(RecallConfig(vocab_size=32, seed=0))
        recall.store(3, 17)
        assert recall.recall(3) == 17

    def test_unknown_input_returns_none(self):
        recall = HippocampalRecall(RecallConfig(vocab_size=32, seed=0))
        recall.store(3, 17)
        assert recall.recall(9) is None

    def test_many_transitions_separable(self):
        recall = HippocampalRecall(RecallConfig(vocab_size=64, seed=1))
        mapping = {i: (i * 7 + 3) % 64 for i in range(30)}
        for src, dst in mapping.items():
            recall.store(src, dst)
        correct = sum(recall.recall(src) == dst for src, dst in mapping.items())
        assert correct >= 27  # sparse codes keep one-shot memories apart

    def test_conflicting_transitions_ambiguous(self):
        recall = HippocampalRecall(RecallConfig(vocab_size=32, seed=2))
        recall.store(5, 10)
        recall.store(5, 20)
        # both engrams are now superimposed; recall refuses to guess or
        # returns one of the two — never a third class
        answer = recall.recall(5)
        assert answer in (None, 10, 20)

    def test_occupancy_grows(self):
        recall = HippocampalRecall(RecallConfig(vocab_size=64, seed=0))
        assert recall.occupancy() == 0.0
        for i in range(20):
            recall.store(i, (i + 1) % 64)
        assert recall.occupancy() > 0.0

    def test_out_of_vocab_rejected(self):
        recall = HippocampalRecall(RecallConfig(vocab_size=8, seed=0))
        with pytest.raises(ValueError):
            recall.store(9, 1)
        with pytest.raises(ValueError):
            recall.recall(9)

    def test_counters(self):
        recall = HippocampalRecall(RecallConfig(vocab_size=16, seed=0))
        recall.store(1, 2)
        recall.recall(1)
        assert recall.stored_transitions == 1
        assert recall.recalls_served == 1


class TestCLSIntegration:
    def make(self, recall: bool) -> CLSPrefetcher:
        return CLSPrefetcher(CLSPrefetcherConfig(
            model="hebbian", vocab_size=64, encoder="page",
            hebbian=HebbianConfig(vocab_size=64, hidden_dim=150, seed=0),
            recall=recall, min_confidence=0.25))

    def test_recall_vocab_mismatch_rejected(self):
        with pytest.raises(ValueError, match="recall config vocab_size"):
            CLSPrefetcher(CLSPrefetcherConfig(
                model="hebbian", vocab_size=64, recall=True,
                recall_config=RecallConfig(vocab_size=32)))

    def test_one_shot_prefetch_on_second_visit(self):
        """After seeing A->B once, the very next visit to A prefetches B —
        before the neocortex has consolidated anything."""
        prefetcher = self.make(recall=True)
        pages = [3, 9, 4, 3, 9]  # transition 3->9 seen once, then repeated
        predictions = []
        for i, page in enumerate(pages):
            predictions = prefetcher.on_miss(MissEvent(
                index=i, address=page * 4096, page=page, stream_id=0,
                timestamp=i * 100))
        del predictions
        # at the final miss on 3 (index 3 -> page 3), the prediction for 9
        # came from recall; verify via the counters and the run below
        assert prefetcher.recall_stats.answered >= 1

    def test_recall_improves_early_learning(self):
        trace = pointer_chase(PatternSpec(n=2000, working_set=150,
                                          element_size=4096, seed=3))
        cfg = SimConfig(memory_fraction=0.5)
        base = baseline_misses(trace, cfg)

        def run(recall: bool) -> float:
            prefetcher = CLSPrefetcher(CLSPrefetcherConfig(
                model="hebbian", vocab_size=256, encoder="page",
                hebbian=HebbianConfig(vocab_size=256, hidden_dim=300, seed=0),
                recall=recall, min_confidence=0.25))
            return simulate(trace, prefetcher, cfg).percent_misses_removed(base)

        assert run(True) > run(False) + 5.0

    def test_occupancy_reset_keeps_memory_usable(self):
        prefetcher = CLSPrefetcher(CLSPrefetcherConfig(
            model="hebbian", vocab_size=64, encoder="page",
            hebbian=HebbianConfig(vocab_size=64, hidden_dim=150, seed=0),
            recall=True, recall_occupancy_reset=0.05))
        for i in range(300):
            page = (i * 13) % 60
            prefetcher.on_miss(MissEvent(index=i, address=page * 4096,
                                         page=page, stream_id=0,
                                         timestamp=i * 100))
        assert prefetcher.recall_memory is not None
        assert prefetcher.recall_memory.occupancy() <= 0.2
