"""Tests for the availability protocol and noise robustness (§5.5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.availability import (
    ShadowModelManager,
    perturb_weights,
    weight_noise_robustness,
    weights_finite,
)
from repro.nn.hebbian import HebbianConfig, SparseHebbianNetwork
from repro.nn.lstm import LSTMConfig, OnlineLSTM


def small_hebbian(seed: int = 0) -> SparseHebbianNetwork:
    return SparseHebbianNetwork(HebbianConfig(vocab_size=16, hidden_dim=150,
                                              seed=seed))


class TestShadowModelManager:
    def test_training_goes_to_shadow_not_live(self):
        manager = ShadowModelManager(small_hebbian(), redeploy_below=0.0,
                                     max_staleness=10_000)
        for _ in range(30):
            manager.train_shadow(1, 2)
        live_probs = manager.live.step(1, train=False)
        shadow_probs = manager.shadow.step(1, train=False)
        assert shadow_probs[2] > live_probs[2]

    def test_staleness_backstop_redeploys(self):
        manager = ShadowModelManager(small_hebbian(), redeploy_below=0.0,
                                     max_staleness=5)
        for _ in range(4):
            manager.train_shadow(1, 2)
        assert not manager.should_redeploy()
        manager.train_shadow(1, 2)
        assert manager.should_redeploy()
        manager.redeploy()
        assert manager.redeploys == 1
        assert not manager.should_redeploy()

    def test_confidence_drop_triggers_redeploy(self):
        manager = ShadowModelManager(small_hebbian(), redeploy_below=0.5,
                                     ema_alpha=1.0, max_staleness=10_000)
        manager.note_confidence(0.1)
        assert manager.should_redeploy()

    def test_observe_full_cycle(self):
        manager = ShadowModelManager(small_hebbian(), redeploy_below=0.9,
                                     ema_alpha=0.5, max_staleness=10)
        for _ in range(40):
            manager.observe(1, 2)
        # after redeploys, the live model has learned the mapping
        probs = manager.live.step(1, train=False)
        assert probs[2] > 0.5
        assert manager.redeploys >= 1

    def test_redeploy_forks_fresh_shadow(self):
        manager = ShadowModelManager(small_hebbian())
        manager.train_shadow(1, 2)
        old_shadow = manager.shadow
        manager.redeploy()
        assert manager.live is old_shadow
        assert manager.shadow is not old_shadow

    def test_validation(self):
        with pytest.raises(ValueError):
            ShadowModelManager(small_hebbian(), ema_alpha=0.0)
        with pytest.raises(ValueError):
            ShadowModelManager(small_hebbian(), max_staleness=0)

    def test_confidence_exactly_at_threshold_does_not_redeploy(self):
        """The trigger is strict ``<``: an EMA sitting exactly on the
        threshold keeps the live model (the serving layer's swap logic
        depends on this edge not flapping)."""
        manager = ShadowModelManager(small_hebbian(), redeploy_below=0.5,
                                     ema_alpha=1.0, max_staleness=10_000)
        manager.note_confidence(0.5)
        assert manager.confidence_ema == 0.5
        assert not manager.should_redeploy()
        manager.note_confidence(np.nextafter(0.5, 0.0))
        assert manager.should_redeploy()

    def test_zero_query_window_leaves_ema_untouched(self):
        """With no confidence observations at all, the EMA never moves —
        only the staleness backstop can force a redeploy."""
        manager = ShadowModelManager(small_hebbian(), redeploy_below=0.5,
                                     max_staleness=7)
        before = manager.confidence_ema
        for _ in range(6):
            manager.train_shadow(1, 2)
            assert manager.confidence_ema == before
            assert not manager.should_redeploy()
        manager.train_shadow(1, 2)  # step 7: exactly max_staleness
        assert manager.confidence_ema == before
        assert manager.should_redeploy()

    def test_staleness_backstop_fires_at_exact_boundary(self):
        manager = ShadowModelManager(small_hebbian(), redeploy_below=0.0,
                                     max_staleness=3)
        for expected in (1, 2):
            manager.train_shadow(1, 2)
            assert manager.staleness == expected
            assert not manager.should_redeploy()
        manager.train_shadow(1, 2)
        assert manager.staleness == 3
        assert manager.should_redeploy()
        manager.redeploy()
        assert manager.staleness == 0

    def test_redeploy_clamps_ema_to_threshold(self):
        """Redeploy resets the EMA to at least the threshold, so a
        single low reading cannot trigger back-to-back swaps."""
        manager = ShadowModelManager(small_hebbian(), redeploy_below=0.5,
                                     ema_alpha=1.0, max_staleness=10_000)
        manager.note_confidence(0.1)
        assert manager.should_redeploy()
        manager.redeploy()
        assert manager.confidence_ema == 0.5
        assert not manager.should_redeploy()

    def test_discard_shadow_reforks_from_live(self):
        manager = ShadowModelManager(small_hebbian(), redeploy_below=0.0,
                                     max_staleness=10)
        for _ in range(5):
            manager.train_shadow(1, 2)
        trained_shadow = manager.shadow
        manager.discard_shadow()
        assert manager.shadow is not trained_shadow
        assert manager.staleness == 0
        assert np.array_equal(manager.shadow.w_out, manager.live.w_out)
        # The discarded training really is gone.
        live_probs = manager.live.step(1, train=False)
        shadow_probs = manager.shadow.step(1, train=False)
        assert shadow_probs[2] == pytest.approx(live_probs[2])


class TestWeightsFinite:
    def test_hebbian_true_then_false_after_nan(self):
        model = small_hebbian()
        assert weights_finite(model)
        w_out = model.w_out.copy()
        w_out.reshape(-1)[0] = np.nan
        model.w_out = w_out
        assert not weights_finite(model)

    def test_lstm_true_then_false_after_inf(self):
        model = OnlineLSTM(LSTMConfig(vocab_size=8, embed_dim=4,
                                      hidden_dim=8, seed=0))
        assert weights_finite(model)
        key = next(iter(model.net.params))
        model.net.params[key].reshape(-1)[0] = np.inf
        assert not weights_finite(model)

    def test_unknown_model_type_rejected(self):
        with pytest.raises(TypeError):
            weights_finite(object())  # type: ignore[arg-type]


class TestPerturbWeights:
    def test_lstm_perturbed_copy(self):
        model = OnlineLSTM(LSTMConfig(vocab_size=8, embed_dim=4, hidden_dim=8,
                                      seed=0))
        twin = perturb_weights(model, sigma=0.1, seed=1)
        assert any(not np.array_equal(twin.net.params[k], model.net.params[k])
                   for k in model.net.params)

    def test_hebbian_mask_respected(self):
        model = small_hebbian()
        for _ in range(20):
            model.train_pair(1, 2)
        twin = perturb_weights(model, sigma=0.3, seed=2)
        assert np.all(twin.w_out[~twin.mask_out] == 0.0)

    def test_sigma_zero_keeps_behaviour(self):
        model = small_hebbian()
        for _ in range(30):
            model.train_pair(1, 2)
        twin = perturb_weights(model, sigma=0.0, seed=3)
        probe = [1, 2] * 5
        assert twin.evaluate_sequence(probe) == pytest.approx(
            model.evaluate_sequence(probe))

    def test_unknown_model_type_rejected(self):
        with pytest.raises(TypeError):
            perturb_weights(object(), sigma=0.1)  # type: ignore[arg-type]


class TestNoiseRobustness:
    def test_curve_monotone_ish_and_robust_at_small_sigma(self):
        model = OnlineLSTM(LSTMConfig(vocab_size=8, embed_dim=8, hidden_dim=16,
                                      window=4, lr=1.0, seed=0))
        cycle = [1, 3, 5]
        for _ in range(120):
            for c in cycle:
                model.step(c)
        curve = weight_noise_robustness(model, cycle * 6,
                                        sigmas=(0.0, 0.05, 1.0), seed=0)
        assert curve[0.0] > 0.9
        # §5.5: small perturbations barely move the output...
        assert curve[0.05] > 0.8 * curve[0.0]
        # ...large ones destroy it (so the effect is real, not trivial)
        assert curve[1.0] < curve[0.0]
