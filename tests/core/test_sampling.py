"""Tests for the training-instance policies (§5.1)."""

from __future__ import annotations

import pytest

from repro.core.sampling import (
    BatchAccumulate,
    ConfidenceFiltered,
    RandomSampling,
    TrainAlways,
    TrainEveryK,
    make_training_policy,
)


class TestTrainAlways:
    def test_always_true_and_counts(self):
        policy = TrainAlways()
        assert all(policy.should_train(0.5) for _ in range(5))
        assert policy.considered == policy.trained == 5


class TestTrainEveryK:
    def test_period(self):
        policy = TrainEveryK(k=3)
        decisions = [policy.should_train(0.0) for _ in range(9)]
        assert decisions == [False, False, True] * 3
        assert policy.trained == 3

    def test_k_one_equals_always(self):
        policy = TrainEveryK(k=1)
        assert all(policy.should_train(0.0) for _ in range(4))

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            TrainEveryK(k=0)


class TestRandomSampling:
    def test_probability_respected(self):
        policy = RandomSampling(probability=0.25, seed=0)
        n = 4000
        trained = sum(policy.should_train(0.0) for _ in range(n))
        assert 0.2 * n < trained < 0.3 * n

    def test_extremes(self):
        assert not RandomSampling(probability=0.0).should_train(0.0)
        assert RandomSampling(probability=1.0).should_train(0.0)

    def test_deterministic_for_seed(self):
        a = RandomSampling(probability=0.5, seed=3)
        b = RandomSampling(probability=0.5, seed=3)
        assert ([a.should_train(0.0) for _ in range(50)]
                == [b.should_train(0.0) for _ in range(50)])

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            RandomSampling(probability=1.5)


class TestConfidenceFiltered:
    def test_skips_well_learned(self):
        policy = ConfidenceFiltered(skip_above=0.9)
        assert policy.should_train(0.5)
        assert not policy.should_train(0.95)
        assert policy.considered == 2 and policy.trained == 1

    def test_boundary_not_trained(self):
        policy = ConfidenceFiltered(skip_above=0.9)
        assert not policy.should_train(0.9)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            ConfidenceFiltered(skip_above=0.0)


class TestBatchAccumulate:
    def test_fires_once_per_batch(self):
        policy = BatchAccumulate(batch_size=4)
        decisions = [policy.should_train(0.0) for _ in range(8)]
        assert decisions == [False, False, False, True] * 2

    def test_offer_returns_full_batch(self):
        policy = BatchAccumulate(batch_size=3)
        assert policy.offer(1, 2) == []
        assert policy.offer(2, 3) == []
        batch = policy.offer(3, 4)
        assert batch == [(1, 2), (2, 3), (3, 4)]
        assert policy.pending == []

    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            BatchAccumulate(batch_size=0)


class TestFactory:
    @pytest.mark.parametrize("kind,cls", [
        ("always", TrainAlways), ("every_k", TrainEveryK),
        ("random", RandomSampling), ("confidence", ConfidenceFiltered),
        ("batch", BatchAccumulate),
    ])
    def test_kinds(self, kind, cls):
        assert isinstance(make_training_policy(kind), cls)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_training_policy("adaptive")

    def test_names_unique(self):
        names = {make_training_policy(k).name
                 for k in ("always", "every_k", "random", "confidence", "batch")}
        assert len(names) == 5
