"""Tests for the §5.1 batched-training path."""

from __future__ import annotations

import numpy as np

from repro.core.cls_prefetcher import CLSPrefetcher, CLSPrefetcherConfig
from repro.memsim.events import MissEvent
from repro.memsim.simulator import SimConfig, baseline_misses, simulate
from repro.nn.hebbian import HebbianConfig, SparseHebbianNetwork
from repro.nn.lstm import LSTMConfig, OnlineLSTM
from repro.patterns.generators import PatternSpec, pointer_chase


def miss(index: int, page: int) -> MissEvent:
    return MissEvent(index=index, address=page * 4096, page=page,
                     stream_id=0, timestamp=index * 100)


class TestTrainPairs:
    def test_lstm_batch_step_learns(self):
        model = OnlineLSTM(LSTMConfig(vocab_size=8, embed_dim=8, hidden_dim=16,
                                      lr=1.0, seed=0))
        pairs = [(1, 2), (2, 3), (3, 1)] * 4
        for _ in range(60):
            model.train_pairs(pairs)
        assert model.train_pair(1, 2) > 0.8  # confidence before its update

    def test_lstm_empty_batch_noop(self):
        model = OnlineLSTM(LSTMConfig(vocab_size=8, embed_dim=4, hidden_dim=8,
                                      seed=0))
        before = {k: v.copy() for k, v in model.net.params.items()}
        model.train_pairs([])
        for key, value in model.net.params.items():
            np.testing.assert_array_equal(value, before[key])

    def test_hebbian_batch_equals_sequential(self):
        cfg = HebbianConfig(vocab_size=16, hidden_dim=150, seed=0)
        batched = SparseHebbianNetwork(cfg)
        sequential = SparseHebbianNetwork(cfg)
        pairs = [(1, 2), (3, 4), (1, 2)]
        batched.train_pairs(pairs)
        for a, b in pairs:
            sequential.train_pair(a, b)
        np.testing.assert_array_equal(batched.w_out, sequential.w_out)


class TestCLSBatchPolicy:
    def test_batch_policy_accumulates_then_trains(self):
        prefetcher = CLSPrefetcher(CLSPrefetcherConfig(
            model="hebbian", vocab_size=64,
            hebbian=HebbianConfig(vocab_size=64, hidden_dim=150, seed=0),
            training="batch", training_kwargs={"batch_size": 4},
            replay_policy=None))
        # miss 0 yields no class (no delta yet); miss 1 yields a class but
        # no transition; transitions accumulate from miss 2 onward
        for i in range(5):
            prefetcher.on_miss(miss(i, i + 1))
        assert prefetcher.stats.trained_steps == 0  # 3 transitions queued
        prefetcher.on_miss(miss(5, 6))
        assert prefetcher.stats.trained_steps == 4  # batch of 4 applied

    def test_batch_mode_still_prefetches_usefully(self):
        trace = pointer_chase(PatternSpec(n=2500, working_set=120,
                                          element_size=4096, seed=1))
        cfg = SimConfig(memory_fraction=0.5)
        base = baseline_misses(trace, cfg)
        prefetcher = CLSPrefetcher(CLSPrefetcherConfig(
            model="hebbian", vocab_size=256,
            hebbian=HebbianConfig(vocab_size=256, hidden_dim=300, seed=0),
            training="batch", training_kwargs={"batch_size": 8},
            prefetch_length=2, prefetch_width=2))
        run = simulate(trace, prefetcher, cfg)
        assert run.percent_misses_removed(base) > 10.0
        assert prefetcher.stats.trained_steps > 0
