"""Tests for replay policies and the interleaving scheduler (§3.2, §5.4)."""

from __future__ import annotations

import pytest

from repro.core.hippocampus import Episode
from repro.core.replay import (
    REPLAY_LR_SCALE,
    ConfidenceFilteredReplay,
    ConsolidatingReplay,
    FullReplay,
    GenerativeReplay,
    PrototypeReplay,
    ReplayScheduler,
    RingBufferReplay,
    make_replay_policy,
)
from repro.nn.hebbian import HebbianConfig, SparseHebbianNetwork


def ep(i: int, t: int | None = None, phase: int = 0, conf: float = 0.0) -> Episode:
    return Episode(input_class=i, target_class=t if t is not None else i + 1,
                   phase_id=phase, confidence=conf)


@pytest.fixture
def hebbian():
    return SparseHebbianNetwork(HebbianConfig(vocab_size=16, hidden_dim=150,
                                              seed=0))


class TestFullReplay:
    def test_stores_everything(self, rng):
        policy = FullReplay()
        for i in range(10):
            policy.record(ep(i))
        assert policy.storage_size() == 10

    def test_select_excludes_current_phase(self, rng):
        policy = FullReplay()
        for i in range(20):
            policy.record(ep(i, phase=i % 2))
        picks = policy.select(rng, 10, exclude_phase=0)
        assert picks and all(e.phase_id == 1 for e in picks)


class TestRingBufferReplay:
    def test_capacity_enforced(self):
        policy = RingBufferReplay(capacity=4)
        for i in range(10):
            policy.record(ep(i))
        assert policy.storage_size() == 4

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBufferReplay(capacity=0)

    def test_oldest_lost(self, rng):
        policy = RingBufferReplay(capacity=2)
        for i in range(5):
            policy.record(ep(i))
        inputs = {e.input_class for e in policy.select(rng, 20)}
        assert inputs <= {3, 4}


class TestConfidenceFilteredReplay:
    def test_high_confidence_not_stored(self):
        policy = ConfidenceFilteredReplay(confidence_threshold=0.9)
        policy.record(ep(1, conf=0.95))
        policy.record(ep(2, conf=0.2))
        assert policy.storage_size() == 1


class TestPrototypeReplay:
    def test_duplicates_collapse(self):
        policy = PrototypeReplay()
        for _ in range(50):
            policy.record(ep(1, t=2))
        policy.record(ep(3, t=4))
        assert policy.storage_size() == 2

    def test_selection_weighted_by_frequency(self, rng):
        policy = PrototypeReplay()
        for _ in range(90):
            policy.record(ep(1, t=2))
        for _ in range(10):
            policy.record(ep(3, t=4))
        picks = policy.select(rng, 200)
        frequent = sum(1 for e in picks if e.input_class == 1)
        assert frequent > 120  # ~90% expected

    def test_exclude_phase(self, rng):
        policy = PrototypeReplay()
        policy.record(ep(1, phase=0))
        policy.record(ep(2, phase=1))
        picks = policy.select(rng, 10, exclude_phase=0)
        assert all(e.phase_id == 1 for e in picks)


class TestGenerativeReplay:
    def test_no_episode_storage(self, rng):
        policy = GenerativeReplay()
        for i in range(100):
            policy.record(ep(i % 5))
        assert policy.storage_size() == 5  # seed classes only
        assert policy.select(rng, 10) == []

    def test_generates_from_confident_model(self, hebbian, rng):
        for _ in range(80):
            hebbian.train_pair(1, 2)
            hebbian.train_pair(2, 3)
        policy = GenerativeReplay(min_confidence=0.5, rollout_length=2)
        policy.record(ep(1, phase=0))
        pairs = policy.generate(hebbian, rng, batch=4)
        assert pairs
        assert all(src in (1, 2, 3) for src, _ in pairs)

    def test_unconfident_model_generates_nothing(self, hebbian, rng):
        policy = GenerativeReplay(min_confidence=0.99)
        policy.record(ep(1))
        assert policy.generate(hebbian, rng, batch=3) == []


class TestScheduler:
    def test_replays_at_reduced_lr(self, hebbian):
        policy = FullReplay()
        scheduler = ReplayScheduler(policy=policy, per_step=2, seed=0)
        assert scheduler.lr_scale == REPLAY_LR_SCALE
        for i in range(10):
            scheduler.record(ep(i % 3, phase=0))
        count = scheduler.step(hebbian, current_phase=1)
        assert count == 2
        assert scheduler.replayed_total == 2

    def test_zero_per_step_noop(self, hebbian):
        scheduler = ReplayScheduler(policy=FullReplay(), per_step=0)
        scheduler.record(ep(1))
        assert scheduler.step(hebbian) == 0

    def test_rejects_negative_per_step(self):
        with pytest.raises(ValueError):
            ReplayScheduler(policy=FullReplay(), per_step=-1)

    def test_generative_scheduler_trains_model(self, hebbian):
        for _ in range(80):
            hebbian.train_pair(1, 2)
        policy = GenerativeReplay(min_confidence=0.5, rollout_length=1)
        scheduler = ReplayScheduler(policy=policy, per_step=2, seed=1)
        scheduler.record(ep(1, phase=0))
        count = scheduler.step(hebbian, current_phase=1)
        assert count >= 1

    def test_replay_preserves_old_mapping(self, hebbian):
        """The §3.2 mechanism end-to-end on the Hebbian net: interleaved
        replay keeps an old association alive under conflicting training."""
        for _ in range(40):
            hebbian.train_pair(1, 2)
        scheduler = ReplayScheduler(policy=FullReplay(), per_step=2,
                                    lr_scale=0.5, seed=0)
        for _ in range(40):
            scheduler.record(ep(1, t=2, phase=0))

        no_replay = hebbian.clone()
        for _ in range(60):
            no_replay.train_pair(1, 3)       # conflicting mapping
        with_replay = hebbian.clone()
        for _ in range(60):
            with_replay.train_pair(1, 3)
            scheduler.step(with_replay, current_phase=1)

        def p_old(model):
            return model.probabilities(model.readout(model.hidden_code(1)))[2]

        assert p_old(with_replay) > p_old(no_replay)


class TestFactory:
    @pytest.mark.parametrize("kind,cls", [
        ("full", FullReplay), ("ring", RingBufferReplay),
        ("confidence", ConfidenceFilteredReplay),
        ("prototype", PrototypeReplay), ("generative", GenerativeReplay),
    ])
    def test_kinds(self, kind, cls):
        assert isinstance(make_replay_policy(kind), cls)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_replay_policy("episodic")

    def test_kwargs_forwarded(self):
        policy = make_replay_policy("ring", capacity=7)
        assert policy.capacity == 7


class TestConsolidatingReplay:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConsolidatingReplay(consolidated_above=0.0)

    def test_stores_and_selects(self, rng):
        policy = ConsolidatingReplay()
        for i in range(10):
            policy.record(ep(i, phase=i % 2))
        assert policy.storage_size() == 10
        picks = policy.select(rng, 5, exclude_phase=0)
        assert picks and all(e.phase_id == 1 for e in picks)

    def test_consolidated_episodes_freed(self):
        policy = ConsolidatingReplay(consolidated_above=0.8)
        episode = ep(1)
        policy.record(episode)
        policy.on_replayed(episode, confidence=0.95)
        assert policy.storage_size() == 0
        assert policy.consolidated_total == 1

    def test_unconsolidated_episodes_kept(self):
        policy = ConsolidatingReplay(consolidated_above=0.8)
        episode = ep(1)
        policy.record(episode)
        policy.on_replayed(episode, confidence=0.3)
        assert policy.storage_size() == 1

    def test_double_free_harmless(self):
        policy = ConsolidatingReplay(consolidated_above=0.5)
        episode = ep(1)
        policy.record(episode)
        policy.on_replayed(episode, confidence=0.9)
        policy.on_replayed(episode, confidence=0.9)
        assert policy.consolidated_total == 1

    def test_scheduler_shrinks_store_as_model_learns(self, hebbian):
        """End-to-end §5.4: replay consolidates the mapping into the model
        and the hippocampal store empties itself."""
        policy = ConsolidatingReplay(consolidated_above=0.6)
        scheduler = ReplayScheduler(policy=policy, per_step=4, lr_scale=1.0,
                                    seed=0)
        for _ in range(30):
            scheduler.record(ep(1, t=2, phase=0))
        initial = policy.storage_size()
        for _ in range(120):
            scheduler.step(hebbian, current_phase=1)
        assert policy.storage_size() < initial
        assert policy.consolidated_total > 0

    def test_factory(self):
        assert isinstance(make_replay_policy("consolidating"),
                          ConsolidatingReplay)
