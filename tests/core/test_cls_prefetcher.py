"""Tests for the CLS prefetcher — the paper's assembled contribution."""

from __future__ import annotations

import pytest

from repro.core.cls_prefetcher import CLSPrefetcher, CLSPrefetcherConfig
from repro.memsim.events import MissEvent
from repro.memsim.simulator import SimConfig, baseline_misses, simulate
from repro.nn.hebbian import HebbianConfig
from repro.patterns.generators import PatternSpec, pointer_chase, stride


def small_config(**overrides) -> CLSPrefetcherConfig:
    defaults = dict(
        model="hebbian",
        vocab_size=64,
        hebbian=HebbianConfig(vocab_size=64, hidden_dim=150, seed=0),
    )
    defaults.update(overrides)
    return CLSPrefetcherConfig(**defaults)


def miss(index: int, address: int, page_size: int = 4096,
         ts: int | None = None) -> MissEvent:
    return MissEvent(index=index, address=address, page=address // page_size,
                     stream_id=0, timestamp=ts if ts is not None else index * 100)


class TestConfigValidation:
    def test_rejects_unknown_model(self):
        with pytest.raises(ValueError):
            CLSPrefetcherConfig(model="transformer")

    def test_rejects_bad_length_width(self):
        with pytest.raises(ValueError):
            CLSPrefetcherConfig(prefetch_length=0)
        with pytest.raises(ValueError):
            CLSPrefetcherConfig(prefetch_width=0)

    def test_rejects_bad_confidence(self):
        with pytest.raises(ValueError):
            CLSPrefetcherConfig(min_confidence=1.5)

    def test_rejects_vocab_mismatch(self):
        with pytest.raises(ValueError, match="vocab_size mismatch"):
            CLSPrefetcherConfig(model="hebbian", vocab_size=64,
                                hebbian=HebbianConfig(vocab_size=32)).build_model()

    def test_builds_both_model_families(self):
        from repro.nn.hebbian import SparseHebbianNetwork
        from repro.nn.lstm import OnlineLSTM
        assert isinstance(CLSPrefetcherConfig(model="hebbian").build_model(),
                          SparseHebbianNetwork)
        assert isinstance(CLSPrefetcherConfig(model="lstm").build_model(),
                          OnlineLSTM)


class TestOnMiss:
    def test_first_miss_no_prediction(self):
        prefetcher = CLSPrefetcher(small_config())
        assert prefetcher.on_miss(miss(0, 0x1000)) == []

    def test_learns_stride_and_prefetches_next_page(self):
        prefetcher = CLSPrefetcher(small_config())
        # misses every page in sequence: delta +1 page
        predictions = []
        for i in range(60):
            predictions = prefetcher.on_miss(miss(i, 0x10000 + i * 4096))
        assert predictions == [0x10000 // 4096 + 60]

    def test_never_prefetches_current_page(self):
        prefetcher = CLSPrefetcher(small_config(prefetch_width=4,
                                                prefetch_length=4))
        for i in range(40):
            pages = prefetcher.on_miss(miss(i, i * 4096))
            assert (i) not in pages

    def test_width_and_length_bound_output(self):
        prefetcher = CLSPrefetcher(small_config(prefetch_width=2,
                                                prefetch_length=3))
        for i in range(30):
            pages = prefetcher.on_miss(miss(i, i * 4096))
            assert len(pages) <= 6

    def test_min_confidence_suppresses_early(self):
        confident = CLSPrefetcher(small_config(min_confidence=0.0))
        selective = CLSPrefetcher(small_config(min_confidence=0.95))
        total_confident = total_selective = 0
        for i in range(20):
            total_confident += len(confident.on_miss(miss(i, i * 4096)))
            total_selective += len(selective.on_miss(miss(i, i * 4096)))
        assert total_selective < total_confident
        assert selective.stats.suppressed_low_confidence > 0

    def test_stats_counted(self):
        prefetcher = CLSPrefetcher(small_config())
        for i in range(10):
            prefetcher.on_miss(miss(i, i * 4096))
        assert prefetcher.stats.misses_seen == 10
        assert prefetcher.stats.trained_steps > 0

    def test_training_policy_gates_training(self):
        prefetcher = CLSPrefetcher(small_config(training="every_k",
                                                training_kwargs={"k": 4}))
        for i in range(41):
            prefetcher.on_miss(miss(i, i * 4096))
        # ~1/4 of eligible transitions trained
        assert prefetcher.stats.trained_steps <= 12

    def test_replay_disabled(self):
        prefetcher = CLSPrefetcher(small_config(replay_policy=None))
        for i in range(20):
            prefetcher.on_miss(miss(i, i * 4096))
        assert prefetcher.scheduler is None
        assert prefetcher.stats.replayed_pairs == 0

    def test_replay_runs_when_enabled(self):
        prefetcher = CLSPrefetcher(small_config(replay_policy="full",
                                                replay_per_step=1,
                                                phase_detection=False))
        # two alternating phases of transitions
        for i in range(30):
            prefetcher.on_miss(miss(i, i * 4096))
        assert prefetcher.stats.replayed_pairs > 0

    def test_reset_stream(self):
        prefetcher = CLSPrefetcher(small_config())
        for i in range(10):
            prefetcher.on_miss(miss(i, i * 4096))
        prefetcher.reset_stream()
        assert prefetcher.on_miss(miss(11, 0x900000)) == []


class TestAvailabilityIntegration:
    def test_shadow_protocol_wired(self):
        prefetcher = CLSPrefetcher(small_config(availability=True))
        assert prefetcher.manager is not None
        for i in range(300):
            prefetcher.on_miss(miss(i, (i % 50) * 4096))
        assert prefetcher.manager.redeploys >= 1
        # live model still learned the cyclic stride
        assert prefetcher.stats.trained_steps > 0

    def test_shadow_protocol_still_prefetches_usefully(self):
        trace = stride(PatternSpec(n=600, working_set=80, element_size=4096))
        cfg = SimConfig(memory_fraction=0.5)
        base = baseline_misses(trace, cfg)
        run = simulate(trace, CLSPrefetcher(small_config(availability=True,
                                                         prefetch_length=2)), cfg)
        assert run.percent_misses_removed(base) > 10.0


class TestEndToEnd:
    def test_beats_baseline_on_pointer_chase(self):
        trace = pointer_chase(PatternSpec(n=2000, working_set=100,
                                          element_size=4096, seed=1))
        cfg = SimConfig(memory_fraction=0.5)
        base = baseline_misses(trace, cfg)
        prefetcher = CLSPrefetcher(small_config(vocab_size=128,
                                                hebbian=HebbianConfig(
                                                    vocab_size=128,
                                                    hidden_dim=300, seed=0),
                                                prefetch_length=2,
                                                prefetch_width=2))
        run = simulate(trace, prefetcher, cfg)
        assert run.percent_misses_removed(base) > 15.0
        # accuracy is depressed by capacity evictions in the thrashing
        # cyclic working set, not by wrong predictions
        assert run.stats.prefetch_accuracy > 0.35

    def test_deterministic_given_seed(self):
        trace = pointer_chase(PatternSpec(n=500, working_set=50,
                                          element_size=4096, seed=3))
        cfg = SimConfig(memory_fraction=0.5)
        runs = [simulate(trace, CLSPrefetcher(small_config()), cfg)
                for _ in range(2)]
        assert runs[0].demand_misses == runs[1].demand_misses


class TestPhaseHinting:
    def test_hint_overrides_detector(self):
        prefetcher = CLSPrefetcher(small_config(phase_detection=True))
        prefetcher.hint_phase(7)
        for i in range(10):
            prefetcher.on_miss(miss(i, i * 4096))
        episodes = prefetcher.scheduler.policy.store.episodes()
        assert episodes and all(e.phase_id == 7 for e in episodes)

    def test_hint_cleared(self):
        prefetcher = CLSPrefetcher(small_config(phase_detection=False))
        prefetcher.hint_phase(3)
        prefetcher.hint_phase(None)
        for i in range(5):
            prefetcher.on_miss(miss(i, i * 4096))
        episodes = prefetcher.scheduler.policy.store.episodes()
        assert all(e.phase_id == -1 for e in episodes)

    def test_rejects_negative_hint(self):
        prefetcher = CLSPrefetcher(small_config())
        with pytest.raises(ValueError):
            prefetcher.hint_phase(-2)

    def test_hinted_phase_excluded_from_replay(self):
        prefetcher = CLSPrefetcher(small_config(replay_per_step=2,
                                                phase_detection=False))
        prefetcher.hint_phase(0)
        for i in range(20):
            prefetcher.on_miss(miss(i, i * 4096))
        # all episodes belong to the hinted (current) phase: none replayable
        assert prefetcher.stats.replayed_pairs == 0
        prefetcher.hint_phase(1)
        for i in range(20, 40):
            prefetcher.on_miss(miss(i, i * 4096))
        assert prefetcher.stats.replayed_pairs > 0
