"""Tests for episodic storage and the sparse associative memory."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hippocampus import Episode, EpisodicStore, SparseAssociativeMemory


def ep(i: int, phase: int = 0, conf: float = 0.0) -> Episode:
    return Episode(input_class=i, target_class=i + 1, phase_id=phase,
                   confidence=conf)


class TestEpisodicStore:
    def test_unbounded_by_default(self):
        store = EpisodicStore()
        for i in range(1000):
            store.store(ep(i))
        assert len(store) == 1000
        assert store.evicted_total == 0

    def test_bounded_evicts_fifo(self):
        store = EpisodicStore(capacity=3)
        for i in range(5):
            store.store(ep(i))
        assert len(store) == 3
        assert [e.input_class for e in store.episodes()] == [2, 3, 4]
        assert store.evicted_total == 2

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            EpisodicStore(capacity=0)

    def test_episodes_filter_by_phase(self):
        store = EpisodicStore()
        store.store(ep(1, phase=0))
        store.store(ep(2, phase=1))
        assert [e.input_class for e in store.episodes(phase_id=1)] == [2]
        assert store.phases() == [0, 1]

    def test_sample_excludes_phase(self, rng):
        store = EpisodicStore()
        for i in range(50):
            store.store(ep(i, phase=i % 2))
        picks = store.sample(rng, 20, exclude_phase=1)
        assert picks
        assert all(e.phase_id == 0 for e in picks)

    def test_sample_empty_store(self, rng):
        assert EpisodicStore().sample(rng, 5) == []

    def test_sample_bounded_attempts(self, rng):
        store = EpisodicStore()
        for i in range(20):
            store.store(ep(i, phase=1))
        # everything excluded: returns few/none rather than spinning
        assert store.sample(rng, 4, exclude_phase=1) == []


class TestSparseAssociativeMemory:
    def test_store_and_exact_recall(self):
        mem = SparseAssociativeMemory(key_dim=100, value_dim=100, value_k=5)
        key = np.array([1, 5, 9, 20, 33])
        value = np.array([2, 4, 6, 8, 10])
        mem.store(key, value)
        np.testing.assert_array_equal(mem.complete(key), value)

    def test_pattern_completion_from_partial_cue(self):
        mem = SparseAssociativeMemory(key_dim=200, value_dim=200, value_k=6,
                                      threshold_fraction=0.5)
        rng = np.random.default_rng(0)
        key = rng.choice(200, size=12, replace=False)
        value = np.sort(rng.choice(200, size=6, replace=False))
        mem.store(key, value)
        partial = key[:8]  # 2/3 of the cue
        np.testing.assert_array_equal(np.sort(mem.complete(partial)), value)

    def test_pattern_separation_across_memories(self):
        mem = SparseAssociativeMemory(key_dim=400, value_dim=400, value_k=5)
        rng = np.random.default_rng(1)
        pairs = []
        for _ in range(10):
            key = rng.choice(400, size=10, replace=False)
            value = np.sort(rng.choice(400, size=5, replace=False))
            mem.store(key, value)
            pairs.append((key, value))
        correct = sum(
            np.array_equal(np.sort(mem.complete(k)), v) for k, v in pairs)
        assert correct >= 9  # sparse codes keep memories separable

    def test_empty_cue(self):
        mem = SparseAssociativeMemory(key_dim=10, value_dim=10, value_k=2)
        assert mem.complete(np.array([], dtype=np.int64)).size == 0

    def test_density_grows(self):
        mem = SparseAssociativeMemory(key_dim=50, value_dim=50, value_k=3)
        assert mem.density() == 0.0
        mem.store(np.array([1, 2]), np.array([3, 4]))
        assert mem.density() > 0.0

    def test_out_of_range_rejected(self):
        mem = SparseAssociativeMemory(key_dim=10, value_dim=10, value_k=2)
        with pytest.raises(ValueError):
            mem.store(np.array([11]), np.array([1]))
        with pytest.raises(ValueError):
            mem.complete(np.array([-1]))

    def test_validation(self):
        with pytest.raises(ValueError):
            SparseAssociativeMemory(key_dim=0, value_dim=10, value_k=1)
        with pytest.raises(ValueError):
            SparseAssociativeMemory(key_dim=10, value_dim=10, value_k=1,
                                    threshold_fraction=0.0)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 1000))
def test_property_recall_returns_at_most_k(seed):
    rng = np.random.default_rng(seed)
    mem = SparseAssociativeMemory(key_dim=80, value_dim=80, value_k=4)
    for _ in range(5):
        mem.store(rng.choice(80, size=8, replace=False),
                  rng.choice(80, size=4, replace=False))
    cue = rng.choice(80, size=8, replace=False)
    assert mem.complete(cue).size <= 4
