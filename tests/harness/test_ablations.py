"""Smoke tests for the ablation drivers (small sizes; benches run them big)."""

from __future__ import annotations

import pytest

from repro.harness.ablations import (
    ablation_availability,
    ablation_encoding,
    ablation_length_width,
    ablation_noise_robustness,
    ablation_sampling,
    ablation_sparsity,
)


class TestSampling:
    def test_rows_and_cost_ordering(self):
        rows = ablation_sampling(n_accesses=4_000, seed=0)
        by_policy = {r["policy"]: r for r in rows}
        assert by_policy["always"]["train_fraction"] == 1.0
        assert by_policy["every4"]["train_fraction"] == pytest.approx(0.25, abs=0.01)
        # cheaper policies train on strictly fewer samples
        assert (by_policy["every4"]["trained_steps"]
                < by_policy["always"]["trained_steps"])


class TestLengthWidth:
    def test_grid_complete(self):
        rows = ablation_length_width(n_accesses=3_000, lengths=(1, 2),
                                     widths=(1, 2), delays=(0, 4))
        assert len(rows) == 8

    def test_delay_hurts_short_length(self):
        rows = ablation_length_width(n_accesses=4_000, lengths=(1,),
                                     widths=(1,), delays=(0, 4))
        timely = next(r for r in rows if r["delay_accesses"] == 0)
        late = next(r for r in rows if r["delay_accesses"] == 4)
        assert late["misses_removed_pct"] < timely["misses_removed_pct"]


class TestEncoding:
    def test_memcached_defeats_both_encoders(self):
        rows = ablation_encoding(n_accesses=4_000)
        memcached = [r for r in rows if r["workload"] == "memcached"]
        assert all(r["misses_removed_pct"] < 15.0 for r in memcached)

    def test_pointer_chase_is_learnable(self):
        rows = ablation_encoding(n_accesses=4_000)
        chase = [r for r in rows if r["workload"] == "pointer_chase"]
        assert max(r["misses_removed_pct"] for r in chase) > 10.0


class TestAvailability:
    def test_both_protocols_run(self):
        rows = ablation_availability(n_accesses=3_000)
        protocols = {r["protocol"] for r in rows}
        assert protocols == {"train-in-place", "shadow-copy"}
        in_place = next(r for r in rows if r["protocol"] == "train-in-place")
        assert in_place["redeploys"] == 0


class TestNoise:
    def test_curves_for_both_families(self):
        rows = ablation_noise_robustness(seed=0)
        models = {r["model"] for r in rows}
        assert models == {"hebbian", "lstm"}
        for model in models:
            curve = {r["sigma"]: r["confidence"] for r in rows
                     if r["model"] == model}
            assert curve[0.0] > 0.5
            assert curve[0.05] > 0.5 * curve[0.0]  # robust to small noise


class TestSparsity:
    def test_grid_and_monotone_cost(self):
        rows = ablation_sparsity(connectivities=(0.05, 0.25),
                                 activations=(0.05, 0.25))
        assert len(rows) == 4
        # more connectivity -> more parameters
        low = next(r for r in rows
                   if r["connectivity"] == 0.05 and r["activation"] == 0.05)
        high = next(r for r in rows
                    if r["connectivity"] == 0.25 and r["activation"] == 0.05)
        assert high["parameters"] > low["parameters"]

    def test_paper_setting_learns(self):
        rows = ablation_sparsity(connectivities=(0.125,), activations=(0.10,))
        assert rows[0]["confidence"] > 0.7
