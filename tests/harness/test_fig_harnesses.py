"""Tests for the per-figure experiment drivers."""

from __future__ import annotations

import pytest

from repro.harness.fig2 import inference_panel, training_panel
from repro.harness.fig5 import Fig5Config, make_model_prefetcher, run_fig5
from repro.harness.fig6 import modeled_inference_ns, required_prefetch_length
from repro.harness.tables import (
    PAPER_TABLE2,
    pattern_signature,
    table1_signatures,
    table2_rows,
)


class TestFig2:
    def test_inference_panel_families(self):
        series = inference_panel()
        labels = {s.label for s in series}
        assert {"lstm-fp32-1t", "lstm-fp32-2t", "lstm-int8-1t",
                "hebbian-1t"} == labels

    def test_latency_grows_with_future_steps(self):
        for series in inference_panel():
            values = list(series.latencies_us)
            assert values == sorted(values)

    def test_shape_claims_hold(self):
        """The Figure 2 orderings the paper reports."""
        by_label = {s.label: s.latencies_us for s in inference_panel()}
        # quantization helps but stays above target; hebbian below all
        for i in range(len(by_label["lstm-fp32-1t"])):
            assert by_label["lstm-int8-1t"][i] < by_label["lstm-fp32-1t"][i]
            assert by_label["hebbian-1t"][i] < by_label["lstm-int8-1t"][i]

    def test_training_per_example_drops_with_batch(self):
        for series in training_panel():
            values = list(series.latencies_us)
            assert values == sorted(values, reverse=True)


class TestTable1:
    def test_all_patterns_signed(self):
        signatures = table1_signatures()
        assert [s.pattern for s in signatures] == [
            "stride", "pointer_chase", "indirect_stride",
            "indirect_index", "pointer_offset"]

    def test_stride_signature(self):
        s = pattern_signature("stride")
        assert s.distinct_deltas <= 2
        assert s.dominant_delta_share > 0.9

    def test_pointer_chase_signature(self):
        s = pattern_signature("pointer_chase")
        assert s.distinct_deltas > 10
        assert s.period is not None

    def test_pointer_offset_dominant_field_stride(self):
        s = pattern_signature("pointer_offset")
        assert 0.3 < s.dominant_delta_share < 0.9


class TestTable2:
    def test_rows_and_paper_columns(self):
        rows = table2_rows()
        assert [r.model for r in rows] == ["lstm", "hebbian"]
        lstm, hebbian = rows
        assert lstm.inference_kind == "FP" and hebbian.inference_kind == "INT"
        assert lstm.paper_parameters == PAPER_TABLE2["lstm"]["parameters"]

    def test_measured_matches_paper_scale(self):
        lstm, hebbian = table2_rows()
        assert lstm.parameters == pytest.approx(170_000, rel=0.05)
        assert hebbian.parameters == pytest.approx(49_000, rel=0.05)
        # the headline ratios
        assert lstm.parameters / hebbian.parameters > 3.0
        assert lstm.inference_ops / hebbian.inference_ops > 10.0
        assert lstm.training_ops / hebbian.training_ops > 10.0


class TestFig5:
    def test_tiny_run_produces_grid(self):
        config = Fig5Config(applications=("mcf",), n_accesses=3_000,
                            vocab_size=128)
        result = run_fig5(config, models=("hebbian",))
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row.trace_name == "mcf"
        assert row.prefetcher_name == "cls-hebbian"
        assert row.misses_baseline > 0

    def test_make_model_prefetcher_validates(self):
        with pytest.raises(ValueError):
            make_model_prefetcher("transformer", Fig5Config())


class TestFig6Helpers:
    def test_modeled_latency_ordering(self):
        assert modeled_inference_ns("hebbian") < modeled_inference_ns("lstm") / 10

    def test_required_length_hebbian_feasible_lstm_not(self):
        hebbian_len = required_prefetch_length("hebbian", gap_ns=500)
        lstm_len = required_prefetch_length("lstm", gap_ns=500)
        assert hebbian_len <= 8          # a practical rollout
        assert lstm_len > 5 * hebbian_len  # an impractical one
