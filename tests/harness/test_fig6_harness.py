"""Tests for the Figure 6 harness drivers (small scales)."""

from __future__ import annotations

import pytest

from repro.harness.fig6 import (
    Fig6Config,
    modeled_inference_ns,
    run_disaggregated,
    run_irregular_node,
    run_uvm,
)

CONFIG = Fig6Config(n_nodes=2, node_apps=("resnet", "graph500"),
                    accesses_per_node=3_000, n_streams=3,
                    accesses_per_stream=900, seed=0)


@pytest.fixture(scope="module")
def disagg():
    return run_disaggregated(CONFIG)


class TestDisaggregated:
    def test_all_arms_present(self, disagg):
        assert disagg.baseline.placement == "none"
        assert disagg.decentralized_hebbian.placement == "decentralized"
        assert disagg.centralized_hebbian.placement == "centralized"
        assert len(disagg.decentralized_leap.nodes) == 2

    def test_delays_derived_from_model_latency(self, disagg):
        assert disagg.hebbian_delay_accesses >= 1
        assert disagg.lstm_delay_accesses > 5 * disagg.hebbian_delay_accesses

    def test_speedups_positive(self, disagg):
        for speedup in (disagg.hebbian_speedup, disagg.lstm_speedup,
                        disagg.leap_speedup, disagg.centralized_speedup):
            assert speedup > 0.0

    def test_nodes_cover_all_apps(self, disagg):
        names = {n.trace_name for n in disagg.baseline.nodes}
        assert names == {"resnet", "graph500"}


class TestIrregularNode:
    def test_leap_does_nothing_hebbian_learns(self):
        comparison = run_irregular_node(Fig6Config(accesses_per_node=4_000,
                                                   seed=0))
        assert comparison.leap_speedup == pytest.approx(1.0, abs=0.02)
        assert comparison.hebbian_speedup > 1.05
        assert comparison.leap.total_misses == comparison.baseline.total_misses


class TestUVM:
    def test_width_sweep_runs(self):
        comparison = run_uvm(CONFIG, widths=(1, 2))
        assert set(comparison.per_stream_by_width) == {1, 2}
        assert comparison.baseline.accesses == comparison.shared.accesses
        for result in comparison.per_stream_by_width.values():
            assert result.accesses == comparison.baseline.accesses


class TestLatencyModel:
    def test_inference_ns_order(self):
        hebbian = modeled_inference_ns("hebbian")
        lstm = modeled_inference_ns("lstm")
        assert 1_000 < hebbian < 20_000      # microseconds
        assert lstm > 100_000                 # >100 us
