"""Tests for the seed-sweep driver and CSV export."""

from __future__ import annotations

import csv
from dataclasses import dataclass

import pytest

from repro.harness.export import export_rows_csv
from repro.harness.fig5 import Fig5Config
from repro.harness.variance import VarianceRow, fig5_seed_sweep


class TestSeedSweep:
    def test_aggregates_across_seeds(self):
        rows = fig5_seed_sweep(
            seeds=(0, 1),
            config=Fig5Config(applications=("mcf",), n_accesses=4_000),
            models=("hebbian",))
        assert len(rows) == 1
        row = rows[0]
        assert row.application == "mcf"
        assert len(row.per_seed) == 2
        assert row.worst == min(row.per_seed)
        assert row.mean == pytest.approx(sum(row.per_seed) / 2)

    def test_rejects_empty_seeds(self):
        with pytest.raises(ValueError):
            fig5_seed_sweep(seeds=())


class TestExport:
    def test_dict_rows(self, tmp_path):
        path = tmp_path / "out.csv"
        count = export_rows_csv(path, [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.0}])
        assert count == 2
        with path.open() as handle:
            parsed = list(csv.DictReader(handle))
        assert parsed[0]["a"] == "1"
        assert parsed[1]["b"] == "4.0"

    def test_dataclass_rows(self, tmp_path):
        row = VarianceRow(application="x", model="m", mean=1.0, std=0.1,
                          per_seed=(0.9, 1.1))
        path = tmp_path / "v.csv"
        export_rows_csv(path, [row])
        with path.open() as handle:
            parsed = list(csv.DictReader(handle))
        assert parsed[0]["application"] == "x"
        assert parsed[0]["per_seed"] == "0.9;1.1"

    def test_heterogeneous_keys_union(self, tmp_path):
        path = tmp_path / "h.csv"
        export_rows_csv(path, [{"a": 1}, {"b": 2}])
        with path.open() as handle:
            reader = csv.DictReader(handle)
            assert reader.fieldnames == ["a", "b"]
            parsed = list(reader)
        assert parsed[0]["b"] == ""
        assert parsed[1]["b"] == "2"

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            export_rows_csv(tmp_path / "e.csv", [])

    def test_bad_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            export_rows_csv(tmp_path / "t.csv", [object()])


@dataclass
class _Row:
    name: str
    value: int


def test_export_plain_dataclass(tmp_path):
    path = tmp_path / "p.csv"
    assert export_rows_csv(path, [_Row("x", 1), _Row("y", 2)]) == 2
