"""The shared trace-materialization cache and runner cache integrity.

Covers the PR 4 trace cache (cold/warm parity, keying, corrupt-file
regeneration, the configure bracket) and the runner's stored-spec
verification (a cached result whose recorded spec does not match the
requested one is recomputed, not served).
"""

from __future__ import annotations

import json

import numpy as np

from repro.harness import trace_cache
from repro.harness.runner import run_grid, spec_key
from repro.harness.trace_cache import configure, materialize, trace_spec
from repro.patterns.applications import AppSpec, generate_application
from repro.seeding import spawn_seeds

_SPEC = AppSpec(n=2_000, seed=3)
_ALT_SEED = spawn_seeds(_SPEC.seed, 1)[0]


def _assert_traces_equal(a, b) -> None:
    assert a.name == b.name
    np.testing.assert_array_equal(a.addresses, b.addresses)
    np.testing.assert_array_equal(a.kinds, b.kinds)
    np.testing.assert_array_equal(a.stream_ids, b.stream_ids)
    np.testing.assert_array_equal(a.timestamps, b.timestamps)


class TestMaterialize:
    def test_unconfigured_is_generate_application(self):
        assert trace_cache.configured_dir() is None
        _assert_traces_equal(materialize("mcf", _SPEC),
                             generate_application("mcf", _SPEC))

    def test_cold_and_warm_hits_match_uncached(self, tmp_path):
        uncached = generate_application("mcf", _SPEC)
        previous = configure(tmp_path / "traces")
        try:
            cold = materialize("mcf", _SPEC)
            assert len(list((tmp_path / "traces").glob("*.npz"))) == 1
            warm = materialize("mcf", _SPEC)
        finally:
            configure(previous)
        _assert_traces_equal(cold, uncached)
        _assert_traces_equal(warm, uncached)

    def test_warm_hit_is_served_from_disk(self, tmp_path, monkeypatch):
        previous = configure(tmp_path)
        try:
            materialize("mcf", _SPEC)

            def boom(*args, **kwargs):  # pragma: no cover - must not run
                raise AssertionError("warm hit regenerated the trace")

            monkeypatch.setattr(trace_cache, "generate_application", boom)
            warm = materialize("mcf", _SPEC)
        finally:
            configure(previous)
        _assert_traces_equal(warm, generate_application("mcf", _SPEC))

    def test_distinct_specs_get_distinct_files(self, tmp_path):
        previous = configure(tmp_path)
        try:
            materialize("mcf", _SPEC)
            materialize("mcf", AppSpec(n=_SPEC.n, seed=_ALT_SEED))
            materialize("mcf", AppSpec(n=_SPEC.n + 1, seed=_SPEC.seed))
            materialize("pagerank", _SPEC)
        finally:
            configure(previous)
        assert len(list(tmp_path.glob("*.npz"))) == 4

    def test_corrupt_archive_is_regenerated_and_overwritten(self, tmp_path):
        previous = configure(tmp_path)
        try:
            materialize("mcf", _SPEC)
            [archive] = tmp_path.glob("*.npz")
            archive.write_bytes(b"not a zip archive")
            trace = materialize("mcf", _SPEC)
            assert archive.read_bytes() != b"not a zip archive"
        finally:
            configure(previous)
        _assert_traces_equal(trace, generate_application("mcf", _SPEC))

    def test_foreign_trace_under_right_key_is_not_served(self, tmp_path):
        # A file that loads cleanly but holds a different app's trace
        # (e.g. copied between cache directories) fails the integrity
        # check and is regenerated.
        previous = configure(tmp_path)
        try:
            path = tmp_path / f"{spec_key(trace_spec('mcf', _SPEC))}.npz"
            generate_application("pagerank", _SPEC).save(path)
            trace = materialize("mcf", _SPEC)
        finally:
            configure(previous)
        _assert_traces_equal(trace, generate_application("mcf", _SPEC))

    def test_configure_returns_previous_setting(self, tmp_path):
        first = configure(tmp_path / "a")
        assert first is None
        second = configure(tmp_path / "b")
        assert second == tmp_path / "a"
        assert configure(None) == tmp_path / "b"
        assert trace_cache.configured_dir() is None


def _trace_summary_cell(spec: dict) -> dict:
    trace = materialize(spec["app"], AppSpec(n=spec["n"], seed=spec["seed"]))
    return {"n": len(trace), "first": int(trace.addresses[0])}


class TestRunGridTraceCache:
    def test_parity_and_population_serial_and_parallel(self, tmp_path):
        specs = [{"kind": "t", "app": "mcf", "n": 1_500, "seed": s}
                 for s in (0, 1)]
        bare = run_grid(specs, _trace_summary_cell)
        cached = run_grid(specs, _trace_summary_cell,
                          trace_cache_dir=tmp_path / "serial")
        parallel = run_grid(specs, _trace_summary_cell, jobs=2,
                            trace_cache_dir=tmp_path / "parallel")
        assert bare == cached == parallel
        assert len(list((tmp_path / "serial").glob("*.npz"))) == 2
        assert len(list((tmp_path / "parallel").glob("*.npz"))) == 2

    def test_serial_run_restores_prior_configuration(self, tmp_path):
        previous = configure(tmp_path / "outer")
        try:
            run_grid([{"kind": "t", "app": "mcf", "n": 1_000, "seed": 0}],
                     _trace_summary_cell, trace_cache_dir=tmp_path / "inner")
            assert trace_cache.configured_dir() == tmp_path / "outer"
        finally:
            configure(previous)


class TestResultCacheSpecVerification:
    def test_mismatched_stored_spec_is_recomputed(self, tmp_path):
        spec = {"kind": "t", "app": "mcf", "n": 1_200, "seed": 0}
        cache = tmp_path / "cells"
        [honest] = run_grid([spec], _trace_summary_cell, cache_dir=cache)

        # Tamper: right filename, wrong recorded spec (as a hash collision
        # or a foreign file dropped into the directory would produce).
        path = cache / f"{spec_key(spec)}.json"
        payload = json.loads(path.read_text())
        payload["spec"]["seed"] = 99
        payload["result"] = {"n": -1, "first": -1}
        path.write_text(json.dumps(payload))

        [served] = run_grid([spec], _trace_summary_cell, cache_dir=cache)
        assert served == honest
        assert json.loads(path.read_text())["spec"]["seed"] == 0

    def test_matching_stored_spec_is_served(self, tmp_path):
        spec = {"kind": "t", "app": "mcf", "n": 1_200, "seed": 0}
        cache = tmp_path / "cells"
        run_grid([spec], _trace_summary_cell, cache_dir=cache)

        # Keep the spec honest but change the result: a hit must serve
        # the stored result without recomputing.
        path = cache / f"{spec_key(spec)}.json"
        payload = json.loads(path.read_text())
        payload["result"] = {"n": 42, "first": 7}
        path.write_text(json.dumps(payload))
        assert run_grid([spec], _trace_summary_cell,
                        cache_dir=cache) == [{"n": 42, "first": 7}]

    def test_unreadable_cache_file_is_recomputed(self, tmp_path):
        spec = {"kind": "t", "app": "mcf", "n": 1_200, "seed": 0}
        cache = tmp_path / "cells"
        [honest] = run_grid([spec], _trace_summary_cell, cache_dir=cache)
        path = cache / f"{spec_key(spec)}.json"
        path.write_text("{torn write")
        assert run_grid([spec], _trace_summary_cell,
                        cache_dir=cache) == [honest]
