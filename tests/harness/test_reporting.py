"""Tests for the text reporting helpers."""

from __future__ import annotations

from repro.harness.reporting import format_series, format_table


class TestFormatTable:
    def test_headers_and_rows_aligned(self):
        out = format_table(["name", "value"], [["a", 1], ["bb", 2.5]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "a" in lines[2] and "bb" in lines[3]

    def test_title(self):
        out = format_table(["x"], [[1]], title="Table 2")
        assert out.splitlines()[0] == "Table 2"

    def test_float_formatting(self):
        out = format_table(["v"], [[0.123456], [12345.6]])
        assert "0.123" in out
        assert "12,346" in out

    def test_bool_rendering(self):
        out = format_table(["flag"], [[True], [False]])
        assert "yes" in out and "no" in out

    def test_int_thousands(self):
        out = format_table(["n"], [[172800]])
        assert "172,800" in out


class TestFormatSeries:
    def test_pairs(self):
        out = format_series("lstm", [1, 2], [10.0, 20.0],
                            x_name="steps", y_name="us")
        assert "lstm" in out
        assert "(1, 10.000)" in out
        assert "steps -> us" in out
