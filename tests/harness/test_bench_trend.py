"""``repro bench trend``: extraction, pivoting, fleet rendering.

The bench files' layouts drift per PR — sections appear and disappear,
workload keys are disjoint across files, and the PR 8 fleet bench nests
measurements inside *lists* (scaling curves).  The extractor and pivot
must tolerate all of it without dropping cells or crashing.
"""

from __future__ import annotations

import json

from repro.harness.bench_trend import (
    extract_fleet_cells,
    extract_serve_cells,
    extract_speedups,
    find_bench_files,
    fleet_table,
    serve_table,
    trend_table,
)


def _write(tmp_path, name: str, payload: dict) -> None:
    (tmp_path / name).write_text(json.dumps(payload))


class TestExtractSpeedups:
    def test_nested_dicts_keyed_by_path(self):
        payload = {"simulate": {"stride-resnet": {"speedup": 2.5},
                                "null": {"speedup": 1.0}}}
        assert extract_speedups(payload) == {
            "simulate/stride-resnet": 2.5, "simulate/null": 1.0}

    def test_meta_keys_skipped_and_bools_ignored(self):
        payload = {"pr": 6, "cpu_count": {"speedup": 99.0},
                   "section": {"a": {"speedup": True},
                               "b": {"speedup": 3.0}}}
        assert extract_speedups(payload) == {"section/b": 3.0}

    def test_lists_are_walked(self):
        """Scaling curves (lists of measurement dicts) contribute their
        cells instead of being silently skipped."""
        payload = {"fleet": {"stride-null": [
            {"tenants": 1, "speedup": 0.9},
            {"tenants": 100, "speedup": 3.5},
        ]}}
        assert extract_speedups(payload) == {
            "fleet/stride-null/0": 0.9, "fleet/stride-null/1": 3.5}

    def test_non_dict_payload_is_empty(self):
        assert extract_speedups([1, "x", None]) == {}


class TestTrendTable:
    def test_disjoint_workload_keys_across_files(self, tmp_path):
        """Files measuring entirely different workloads pivot into one
        table with '—' for the unmeasured cells."""
        _write(tmp_path, "BENCH_PR3.json",
               {"sim": {"alpha": {"speedup": 2.0}}})
        _write(tmp_path, "BENCH_PR8.json",
               {"fleet": {"beta": [{"tenants": 10, "speedup": 4.0}]}})
        headers, rows = trend_table(tmp_path)
        assert headers == ["workload", "PR3", "PR8"]
        table = {row[0]: row[1:] for row in rows}
        assert table["alpha"] == [2.0, "—"]
        assert table["beta/0"] == ["—", 4.0]

    def test_numeric_leaves_keep_named_parent(self, tmp_path):
        _write(tmp_path, "BENCH_PR8.json",
               {"fleet": {"a": [{"speedup": 1.5}],
                          "b": [{"speedup": 2.5}]}})
        _, rows = trend_table(tmp_path)
        names = {row[0] for row in rows}
        # Without the parent, both list cells would collide on "0".
        assert names == {"a/0", "b/0"}

    def test_find_bench_files_sorted_by_pr(self, tmp_path):
        _write(tmp_path, "BENCH_PR10.json", {})
        _write(tmp_path, "BENCH_PR3.json", {})
        (tmp_path / "BENCH_notes.json").write_text("{}")
        assert [pr for pr, _ in find_bench_files(tmp_path)] == [3, 10]


class TestFleetTable:
    def test_extracts_fleet_cells_with_provenance(self, tmp_path):
        _write(tmp_path, "BENCH_PR8.json", {
            "pr": 8,
            "fleet": {"stride-null": [
                {"tenants": 1, "fleet_events_per_sec": 1e5,
                 "sequential_events_per_sec": 1.1e5, "speedup": 0.91},
                {"tenants": 1000, "fleet_events_per_sec": 9e5,
                 "sequential_events_per_sec": 2e5, "speedup": 4.5},
            ]}})
        headers, rows = fleet_table(tmp_path)
        assert headers[0] == "PR"
        # PR≤8 cells have no "jobs" field; the column renders "—".
        assert rows == [
            ["PR8", "stride-null", 1, "—", 1e5, 1.1e5, 0.91],
            ["PR8", "stride-null", 1000, "—", 9e5, 2e5, 4.5],
        ]

    def test_learned_lane_and_sharded_rows(self, tmp_path):
        """PR 9 cls rows (with sharded jobs cells) sit alongside PR 8
        null rows in one table."""
        _write(tmp_path, "BENCH_PR8.json", {
            "pr": 8,
            "fleet": {"stride-null": [
                {"tenants": 100, "fleet_events_per_sec": 3e5,
                 "speedup": 2.0}]}})
        _write(tmp_path, "BENCH_PR9.json", {
            "pr": 9,
            "fleet": {"stride-cls": [
                {"tenants": 1000, "fleet_events_per_sec": 4e5,
                 "sequential_events_per_sec": 1e5, "speedup": 4.0},
                {"tenants": 1000, "jobs": 2,
                 "fleet_events_per_sec": 3.5e5,
                 "sequential_events_per_sec": 1e5, "speedup": 3.5},
            ]}})
        _, rows = fleet_table(tmp_path)
        assert ["PR8", "stride-null", 100, "—", 3e5, "—", 2.0] in rows
        assert ["PR9", "stride-cls", 1000, "—", 4e5, 1e5, 4.0] in rows
        assert ["PR9", "stride-cls", 1000, 2, 3.5e5, 1e5, 3.5] in rows

    def test_empty_without_fleet_measurements(self, tmp_path):
        _write(tmp_path, "BENCH_PR3.json",
               {"sim": {"alpha": {"speedup": 2.0}}})
        _, rows = fleet_table(tmp_path)
        assert rows == []

    def test_extract_fleet_cells_requires_both_fields(self):
        payload = {"a": {"tenants": 5},
                   "b": {"fleet_events_per_sec": 1.0},
                   "c": {"tenants": 5, "fleet_events_per_sec": 1.0}}
        labels = [label for label, _ in extract_fleet_cells(payload)]
        assert labels == ["c"]


class TestServeTable:
    def test_throughput_and_latency_shapes_in_one_table(self, tmp_path):
        """The PR 10 serve bench mixes two cell shapes: throughput rows
        (tenants + serve_events_per_sec) and latency rows (p50/p99,
        optionally an offered load).  Both land in one table with '—'
        for the fields the shape lacks."""
        _write(tmp_path, "BENCH_PR10.json", {
            "pr": 10,
            "serve_latency": [
                {"offered_eps": 1000.0, "p50_ms": 0.5, "p99_ms": 9.0}],
            "swap_pause": {"p50_ms": 0.2, "p99_ms": 0.4,
                           "histogram": {"<0.25ms": 10}},
            "serve_throughput": [
                {"tenants": 100, "serve_events_per_sec": 3000.0}],
        })
        headers, rows = serve_table(tmp_path)
        assert headers[0] == "PR"
        assert ["PR10", "serve_latency", "—", 1000.0, "—", 0.5, 9.0] \
            in rows
        assert ["PR10", "swap_pause", "—", "—", "—", 0.2, 0.4] in rows
        assert ["PR10", "serve_throughput", 100, "—", 3000.0, "—", "—"] \
            in rows

    def test_empty_without_serve_measurements(self, tmp_path):
        _write(tmp_path, "BENCH_PR9.json", {
            "pr": 9,
            "fleet": {"stride-cls": [
                {"tenants": 10, "fleet_events_per_sec": 1e5,
                 "speedup": 2.0}]}})
        _, rows = serve_table(tmp_path)
        assert rows == []

    def test_extract_serve_cells_matches_either_shape(self):
        payload = {"a": {"serve_events_per_sec": 1.0},
                   "b": {"p99_ms": 2.0},
                   "c": {"tenants": 5}}
        labels = sorted(label for label, _ in extract_serve_cells(payload))
        assert labels == ["a", "b"]


def test_trend_tolerates_existing_repo_files():
    """The real repo-root bench files must keep parsing as the layout
    evolves (regression guard for the PR 8 list-bearing file)."""
    files = find_bench_files(".")
    if not files:
        return
    headers, rows = trend_table(".")
    assert headers[0] == "workload"
    assert rows
    fleet_table(".")
    serve_table(".")
