"""The parallel, cached grid runner.

Cell functions live at module level so ``ProcessPoolExecutor`` can pickle
them into workers.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.harness.fig5 import Fig5Config, fig5_cell, fig5_cell_spec, run_fig5
from repro.harness.runner import (
    SpecError,
    canonicalize_spec,
    resolve_jobs,
    run_grid,
    spec_key,
)


def _square_cell(spec: dict) -> dict:
    if spec.get("log"):
        with open(spec["log"], "a", encoding="utf-8") as fh:
            fh.write(f"{spec['x']}\n")
    return {"value": spec["x"] ** 2}


def _specs(n: int, log: str | None = None) -> list[dict]:
    return [{"kind": "square", "x": x, "log": log} for x in range(n)]


class TestRunGrid:
    def test_serial_matches_parallel(self):
        serial = run_grid(_specs(8), _square_cell)
        parallel = run_grid(_specs(8), _square_cell, jobs=2)
        assert serial == parallel == [{"value": x ** 2} for x in range(8)]

    def test_results_in_spec_order(self):
        specs = _specs(5)[::-1]
        assert run_grid(specs, _square_cell, jobs=2) == [
            {"value": x ** 2} for x in (4, 3, 2, 1, 0)]

    def test_duplicate_specs_computed_once(self, tmp_path):
        log = str(tmp_path / "calls.log")
        specs = _specs(3, log=log) + _specs(3, log=log)
        results = run_grid(specs, _square_cell)
        assert results[:3] == results[3:]
        assert len(Path(log).read_text().splitlines()) == 3

    def test_second_invocation_served_from_cache(self, tmp_path):
        cache = tmp_path / "cache"
        log = str(tmp_path / "calls.log")
        specs = _specs(4, log=log)
        first = run_grid(specs, _square_cell, cache_dir=cache)
        assert len(Path(log).read_text().splitlines()) == 4
        assert len(list(cache.glob("*.json"))) == 4
        second = run_grid(specs, _square_cell, cache_dir=cache)
        assert second == first
        # no new cell executions: all four served from disk
        assert len(Path(log).read_text().splitlines()) == 4

    def test_spec_change_invalidates_only_that_cell(self, tmp_path):
        cache = tmp_path / "cache"
        log = str(tmp_path / "calls.log")
        run_grid(_specs(3, log=log), _square_cell, cache_dir=cache)
        changed = _specs(3, log=log)
        changed[1]["x"] = 99
        results = run_grid(changed, _square_cell, cache_dir=cache)
        assert results[1] == {"value": 99 ** 2}
        # 3 initial executions + 1 for the changed cell
        assert len(Path(log).read_text().splitlines()) == 4

    def test_cache_file_is_inspectable_json(self, tmp_path):
        cache = tmp_path / "cache"
        spec = {"kind": "square", "x": 7, "log": None}
        run_grid([spec], _square_cell, cache_dir=cache)
        payload = json.loads((cache / f"{spec_key(spec)}.json").read_text())
        assert payload["spec"] == spec
        assert payload["result"] == {"value": 49}

    def test_spec_key_is_order_insensitive(self):
        assert (spec_key({"a": 1, "b": 2})
                == spec_key({"b": 2, "a": 1}))
        assert spec_key({"a": 1}) != spec_key({"a": 2})


class TestResolveJobs:
    def test_auto_detects_from_available_cores(self):
        import os

        try:
            cores = len(os.sched_getaffinity(0))
        except (AttributeError, OSError):
            cores = os.cpu_count() or 1
        assert resolve_jobs(None, 64) == min(cores, 64)

    def test_auto_honors_affinity_mask(self, monkeypatch):
        import repro.harness.runner as runner_mod

        monkeypatch.setattr(runner_mod.os, "sched_getaffinity",
                            lambda pid: {0, 1, 2}, raising=False)
        assert resolve_jobs(None, 64) == 3

    def test_auto_falls_back_without_affinity_api(self, monkeypatch):
        import repro.harness.runner as runner_mod

        monkeypatch.delattr(runner_mod.os, "sched_getaffinity",
                            raising=False)
        cores = runner_mod.os.cpu_count() or 1
        assert resolve_jobs(None, 64) == min(cores, 64)

    def test_auto_caps_at_grid_size(self):
        assert resolve_jobs(None, 1) == 1  # serial: pool beats one cell

    def test_explicit_jobs_capped_at_grid_size(self):
        assert resolve_jobs(8, 3) == 3

    def test_zero_and_one_mean_serial(self):
        assert resolve_jobs(0, 10) == 1
        assert resolve_jobs(1, 10) == 1

    def test_auto_matches_serial_results(self):
        auto = run_grid(_specs(6), _square_cell, jobs=None)
        serial = run_grid(_specs(6), _square_cell, jobs=1)
        assert auto == serial == [{"value": x ** 2} for x in range(6)]


class TestCanonicalSpecs:
    def test_tuple_and_list_share_a_key(self):
        # json round-trips tuples as lists, so a cached cell written with a
        # tuple must be found again by the list-shaped spec (and vice versa).
        assert spec_key({"ws": (1, 2, 3)}) == spec_key({"ws": [1, 2, 3]})

    def test_nested_dict_key_order_insensitive(self):
        assert (spec_key({"sim": {"a": 1, "b": 2}})
                == spec_key({"sim": {"b": 2, "a": 1}}))

    def test_numpy_scalar_rejected_with_field_path(self):
        with pytest.raises(SpecError, match=r"spec\['sim'\]\['seed'\]"):
            spec_key({"sim": {"seed": np.int64(3)}})

    def test_numpy_array_rejected(self):
        with pytest.raises(SpecError, match="ndarray"):
            spec_key({"weights": np.zeros(3)})

    def test_nan_rejected(self):
        with pytest.raises(SpecError, match="NaN/inf"):
            spec_key({"lr": float("nan")})

    def test_inf_rejected_inside_list(self):
        with pytest.raises(SpecError, match=r"spec\['xs'\]\[1\]"):
            spec_key({"xs": [1.0, float("inf")]})

    def test_non_string_dict_key_rejected(self):
        with pytest.raises(SpecError, match="non-string key"):
            spec_key({"by_seed": {0: "a"}})

    def test_callable_rejected(self):
        with pytest.raises(SpecError, match="function"):
            spec_key({"fn": _square_cell})

    def test_canonicalize_normalizes_tuples(self):
        assert canonicalize_spec({"ws": (1, (2, 3))}) == {"ws": [1, [2, 3]]}

    def test_allowed_primitives_pass_through(self):
        spec = {"s": "x", "i": 1, "f": 0.5, "b": True, "n": None}
        assert canonicalize_spec(spec) == spec


class TestFig5ThroughRunner:
    CONFIG = Fig5Config(applications=("resnet",), n_accesses=4_000, seed=3)

    def test_parallel_and_cached_identical_to_serial(self, tmp_path):
        serial = run_fig5(self.CONFIG, models=("hebbian",))
        parallel = run_fig5(self.CONFIG, models=("hebbian",), jobs=2,
                            cache_dir=tmp_path / "cache")
        cached = run_fig5(self.CONFIG, models=("hebbian",),
                          cache_dir=tmp_path / "cache")
        assert serial.rows == parallel.rows == cached.rows
        assert serial.rows[0].trace_name == "resnet"

    def test_cell_spec_ignores_sibling_apps(self):
        wide = Fig5Config(applications=("resnet", "mcf"), n_accesses=4_000)
        narrow = Fig5Config(applications=("resnet",), n_accesses=4_000)
        assert (spec_key(fig5_cell_spec("resnet", "hebbian", wide))
                == spec_key(fig5_cell_spec("resnet", "hebbian", narrow)))

    def test_cell_roundtrips_summary_fields(self):
        row = fig5_cell(fig5_cell_spec("resnet", "hebbian", self.CONFIG))
        assert row["trace_name"] == "resnet"
        assert row["prefetcher_name"] == "cls-hebbian"
        assert row["misses_baseline"] > 0
