"""The parallel, cached grid runner.

Cell functions live at module level so ``ProcessPoolExecutor`` can pickle
them into workers.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.harness.fig5 import Fig5Config, fig5_cell, fig5_cell_spec, run_fig5
from repro.harness.runner import run_grid, spec_key


def _square_cell(spec: dict) -> dict:
    if spec.get("log"):
        with open(spec["log"], "a", encoding="utf-8") as fh:
            fh.write(f"{spec['x']}\n")
    return {"value": spec["x"] ** 2}


def _specs(n: int, log: str | None = None) -> list[dict]:
    return [{"kind": "square", "x": x, "log": log} for x in range(n)]


class TestRunGrid:
    def test_serial_matches_parallel(self):
        serial = run_grid(_specs(8), _square_cell)
        parallel = run_grid(_specs(8), _square_cell, jobs=2)
        assert serial == parallel == [{"value": x ** 2} for x in range(8)]

    def test_results_in_spec_order(self):
        specs = _specs(5)[::-1]
        assert run_grid(specs, _square_cell, jobs=2) == [
            {"value": x ** 2} for x in (4, 3, 2, 1, 0)]

    def test_duplicate_specs_computed_once(self, tmp_path):
        log = str(tmp_path / "calls.log")
        specs = _specs(3, log=log) + _specs(3, log=log)
        results = run_grid(specs, _square_cell)
        assert results[:3] == results[3:]
        assert len(Path(log).read_text().splitlines()) == 3

    def test_second_invocation_served_from_cache(self, tmp_path):
        cache = tmp_path / "cache"
        log = str(tmp_path / "calls.log")
        specs = _specs(4, log=log)
        first = run_grid(specs, _square_cell, cache_dir=cache)
        assert len(Path(log).read_text().splitlines()) == 4
        assert len(list(cache.glob("*.json"))) == 4
        second = run_grid(specs, _square_cell, cache_dir=cache)
        assert second == first
        # no new cell executions: all four served from disk
        assert len(Path(log).read_text().splitlines()) == 4

    def test_spec_change_invalidates_only_that_cell(self, tmp_path):
        cache = tmp_path / "cache"
        log = str(tmp_path / "calls.log")
        run_grid(_specs(3, log=log), _square_cell, cache_dir=cache)
        changed = _specs(3, log=log)
        changed[1]["x"] = 99
        results = run_grid(changed, _square_cell, cache_dir=cache)
        assert results[1] == {"value": 99 ** 2}
        # 3 initial executions + 1 for the changed cell
        assert len(Path(log).read_text().splitlines()) == 4

    def test_cache_file_is_inspectable_json(self, tmp_path):
        cache = tmp_path / "cache"
        spec = {"kind": "square", "x": 7, "log": None}
        run_grid([spec], _square_cell, cache_dir=cache)
        payload = json.loads((cache / f"{spec_key(spec)}.json").read_text())
        assert payload["spec"] == spec
        assert payload["result"] == {"value": 49}

    def test_spec_key_is_order_insensitive(self):
        assert (spec_key({"a": 1, "b": 2})
                == spec_key({"b": 2, "a": 1}))
        assert spec_key({"a": 1}) != spec_key({"a": 2})


class TestFig5ThroughRunner:
    CONFIG = Fig5Config(applications=("resnet",), n_accesses=4_000, seed=3)

    def test_parallel_and_cached_identical_to_serial(self, tmp_path):
        serial = run_fig5(self.CONFIG, models=("hebbian",))
        parallel = run_fig5(self.CONFIG, models=("hebbian",), jobs=2,
                            cache_dir=tmp_path / "cache")
        cached = run_fig5(self.CONFIG, models=("hebbian",),
                          cache_dir=tmp_path / "cache")
        assert serial.rows == parallel.rows == cached.rows
        assert serial.rows[0].trace_name == "resnet"

    def test_cell_spec_ignores_sibling_apps(self):
        wide = Fig5Config(applications=("resnet", "mcf"), n_accesses=4_000)
        narrow = Fig5Config(applications=("resnet",), n_accesses=4_000)
        assert (spec_key(fig5_cell_spec("resnet", "hebbian", wide))
                == spec_key(fig5_cell_spec("resnet", "hebbian", narrow)))

    def test_cell_roundtrips_summary_fields(self):
        row = fig5_cell(fig5_cell_spec("resnet", "hebbian", self.CONFIG))
        assert row["trace_name"] == "resnet"
        assert row["prefetcher_name"] == "cls-hebbian"
        assert row["misses_baseline"] > 0
