"""The fleet shard scheduler: grouping, refill, rollups, manifests."""

from __future__ import annotations

import json

import pytest

from repro.baselines.classic import StridePrefetcher
from repro.core.cls_prefetcher import CLSPrefetcher, CLSPrefetcherConfig
from repro.harness.fleet import run_fleet, write_fleet_manifest
from repro.memsim.fleet import FleetLaneSpec
from repro.memsim.prefetcher import NullPrefetcher
from repro.memsim.simulator import SimConfig, simulate
from repro.nn.hebbian import SparseHebbianNetwork
from repro.patterns import PatternSpec, generate
from repro.telemetry import Telemetry

PATTERNS = ("stride", "indirect_stride", "pointer_offset")


def _specs(n_lanes: int, config: SimConfig, n: int = 1200) -> list:
    return [FleetLaneSpec(
        trace=generate(PATTERNS[i % len(PATTERNS)],
                       PatternSpec(n=n, working_set=160, seed=i)),
        prefetcher=StridePrefetcher(), config=config)
        for i in range(n_lanes)]


def test_mixed_configs_group_into_separate_cohorts() -> None:
    """Lanes with different SimConfigs run in different cohorts, and
    every lane still matches its sequential reference."""
    fast = SimConfig()
    delayed = SimConfig(prefetch_delay_accesses=4)
    specs = _specs(3, fast) + _specs(3, delayed)
    report = run_fleet(specs, max_width=2, record_miss_indices=True)
    assert report.n_cohorts == 2
    assert report.n_lanes == 6
    for spec, outcome in zip(specs, report.outcomes):
        reference = simulate(spec.trace, StridePrefetcher(),
                             config=spec.config, backend="numpy",
                             record_miss_indices=True)
        assert outcome.result.stats.as_dict() == reference.stats.as_dict()
        assert outcome.result.miss_indices == reference.miss_indices
        assert outcome.result.trace_name == spec.trace.name
        assert outcome.accesses == len(spec.trace)
        assert outcome.wall_time_s >= 0.0


def test_rollup_and_telemetry_counters() -> None:
    sink = Telemetry()
    specs = _specs(5, SimConfig())
    report = run_fleet(specs, max_width=3, telemetry=sink)
    rollup = report.rollup()
    assert rollup["n_lanes"] == 5
    assert rollup["total_accesses"] == sum(len(s.trace) for s in specs)
    assert rollup["events_per_sec"] > 0
    assert rollup["lane_latency_p99_s"] >= rollup["lane_latency_p50_s"] >= 0
    assert sink.counters["fleet_lanes_completed"] == 5
    assert sink.counters["fleet_accesses"] == rollup["total_accesses"]
    assert sink.timers["fleet_wall"] > 0


def test_manifest_jsonl_round_trip(tmp_path) -> None:
    specs = _specs(4, SimConfig())
    report = run_fleet(specs, max_width=2)
    path = write_fleet_manifest(report, tmp_path)
    lines = [json.loads(line)
             for line in path.read_text().strip().splitlines()]
    head, lanes = lines[0], lines[1:]
    assert head["record"] == "fleet_manifest"
    assert head["n_lanes"] == 4
    assert "env" in head and "python" in head["env"]
    assert len(lanes) == 4
    for spec, lane in zip(specs, lanes):
        assert lane["record"] == "fleet_lane"
        assert lane["trace"] == spec.trace.name
        assert lane["accesses"] == len(spec.trace)


def test_rejects_nonpositive_width() -> None:
    with pytest.raises(ValueError):
        run_fleet(_specs(1, SimConfig()), max_width=0)


def test_injected_model_clone_matches_config_built() -> None:
    """CLSPrefetcher(model=prototype.clone()) — the fleet's cheap lane
    construction — behaves bit-identically to building from config."""
    trace = generate("stride", PatternSpec(n=1500, working_set=200,
                                           seed=3))
    config = CLSPrefetcherConfig(seed=9)
    prototype = config.build_model()
    assert isinstance(prototype, SparseHebbianNetwork)
    injected = CLSPrefetcher(config, model=prototype.clone())
    built = CLSPrefetcher(config)
    sim_cfg = SimConfig()
    got = simulate(trace, injected, config=sim_cfg, backend="numpy",
                   record_miss_indices=True)
    want = simulate(trace, built, config=sim_cfg, backend="numpy",
                    record_miss_indices=True)
    assert got.stats.as_dict() == want.stats.as_dict()
    assert got.miss_indices == want.miss_indices


def test_fleet_cls_lanes_from_one_prototype() -> None:
    """run_fleet with prototype-cloned CLS lanes reproduces independent
    simulate() runs lane for lane."""
    cls_config = CLSPrefetcherConfig(seed=5)
    prototype = cls_config.build_model()
    traces = [generate(p, PatternSpec(n=1200, working_set=160, seed=i))
              for i, p in enumerate(PATTERNS)]
    sim_cfg = SimConfig()
    specs = [FleetLaneSpec(
        trace=t,
        prefetcher=CLSPrefetcher(cls_config, model=prototype.clone()),
        config=sim_cfg) for t in traces]
    report = run_fleet(specs)
    for trace, outcome in zip(traces, report.outcomes):
        reference = simulate(trace, CLSPrefetcher(cls_config),
                             config=sim_cfg, backend="numpy")
        assert (outcome.result.stats.as_dict()
                == reference.stats.as_dict())
