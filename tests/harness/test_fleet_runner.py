"""The fleet shard scheduler: grouping, refill, rollups, manifests."""

from __future__ import annotations

import json

import pytest

from repro.baselines.classic import StridePrefetcher
from repro.core.cls_prefetcher import CLSPrefetcher, CLSPrefetcherConfig
from repro.harness.fleet import (
    materialize_lane_spec,
    run_fleet,
    run_fleet_jobs,
    write_fleet_jobs_manifest,
    write_fleet_manifest,
)
from repro.memsim.fleet import FleetLaneSpec
from repro.memsim.prefetcher import NullPrefetcher
from repro.memsim.simulator import SimConfig, simulate
from repro.nn.hebbian import SparseHebbianNetwork
from repro.patterns import PatternSpec, generate
from repro.telemetry import Telemetry

PATTERNS = ("stride", "indirect_stride", "pointer_offset")


def _specs(n_lanes: int, config: SimConfig, n: int = 1200) -> list:
    return [FleetLaneSpec(
        trace=generate(PATTERNS[i % len(PATTERNS)],
                       PatternSpec(n=n, working_set=160, seed=i)),
        prefetcher=StridePrefetcher(), config=config)
        for i in range(n_lanes)]


def test_mixed_configs_group_into_separate_cohorts() -> None:
    """Lanes with different SimConfigs run in different cohorts, and
    every lane still matches its sequential reference."""
    fast = SimConfig()
    delayed = SimConfig(prefetch_delay_accesses=4)
    specs = _specs(3, fast) + _specs(3, delayed)
    report = run_fleet(specs, max_width=2, record_miss_indices=True)
    assert report.n_cohorts == 2
    assert report.n_lanes == 6
    for spec, outcome in zip(specs, report.outcomes):
        reference = simulate(spec.trace, StridePrefetcher(),
                             config=spec.config, backend="numpy",
                             record_miss_indices=True)
        assert outcome.result.stats.as_dict() == reference.stats.as_dict()
        assert outcome.result.miss_indices == reference.miss_indices
        assert outcome.result.trace_name == spec.trace.name
        assert outcome.accesses == len(spec.trace)
        assert outcome.wall_time_s >= 0.0


def test_rollup_and_telemetry_counters() -> None:
    sink = Telemetry()
    specs = _specs(5, SimConfig())
    report = run_fleet(specs, max_width=3, telemetry=sink)
    rollup = report.rollup()
    assert rollup["n_lanes"] == 5
    assert rollup["total_accesses"] == sum(len(s.trace) for s in specs)
    assert rollup["events_per_sec"] > 0
    assert rollup["lane_latency_p99_s"] >= rollup["lane_latency_p50_s"] >= 0
    assert sink.counters["fleet_lanes_completed"] == 5
    assert sink.counters["fleet_accesses"] == rollup["total_accesses"]
    assert sink.timers["fleet_wall"] > 0


def test_manifest_jsonl_round_trip(tmp_path) -> None:
    specs = _specs(4, SimConfig())
    report = run_fleet(specs, max_width=2)
    path = write_fleet_manifest(report, tmp_path)
    lines = [json.loads(line)
             for line in path.read_text().strip().splitlines()]
    head, lanes = lines[0], lines[1:]
    assert head["record"] == "fleet_manifest"
    assert head["n_lanes"] == 4
    assert "env" in head and "python" in head["env"]
    assert len(lanes) == 4
    for spec, lane in zip(specs, lanes):
        assert lane["record"] == "fleet_lane"
        assert lane["trace"] == spec.trace.name
        assert lane["accesses"] == len(spec.trace)


def test_rejects_nonpositive_width() -> None:
    with pytest.raises(ValueError):
        run_fleet(_specs(1, SimConfig()), max_width=0)


def test_injected_model_clone_matches_config_built() -> None:
    """CLSPrefetcher(model=prototype.clone()) — the fleet's cheap lane
    construction — behaves bit-identically to building from config."""
    trace = generate("stride", PatternSpec(n=1500, working_set=200,
                                           seed=3))
    config = CLSPrefetcherConfig(seed=9)
    prototype = config.build_model()
    assert isinstance(prototype, SparseHebbianNetwork)
    injected = CLSPrefetcher(config, model=prototype.clone())
    built = CLSPrefetcher(config)
    sim_cfg = SimConfig()
    got = simulate(trace, injected, config=sim_cfg, backend="numpy",
                   record_miss_indices=True)
    want = simulate(trace, built, config=sim_cfg, backend="numpy",
                    record_miss_indices=True)
    assert got.stats.as_dict() == want.stats.as_dict()
    assert got.miss_indices == want.miss_indices


def test_fleet_cls_lanes_from_one_prototype() -> None:
    """run_fleet with prototype-cloned CLS lanes reproduces independent
    simulate() runs lane for lane."""
    cls_config = CLSPrefetcherConfig(seed=5)
    prototype = cls_config.build_model()
    traces = [generate(p, PatternSpec(n=1200, working_set=160, seed=i))
              for i, p in enumerate(PATTERNS)]
    sim_cfg = SimConfig()
    specs = [FleetLaneSpec(
        trace=t,
        prefetcher=CLSPrefetcher(cls_config, model=prototype.clone()),
        config=sim_cfg) for t in traces]
    report = run_fleet(specs)
    for trace, outcome in zip(traces, report.outcomes):
        reference = simulate(trace, CLSPrefetcher(cls_config),
                             config=sim_cfg, backend="numpy")
        assert (outcome.result.stats.as_dict()
                == reference.stats.as_dict())


# ----------------------------------------------------------------------
# Cross-process sharding (run_fleet_jobs).


def _lane_jobs(n_lanes: int, *, learned_every: int = 3) -> list[dict]:
    jobs = []
    for i in range(n_lanes):
        job: dict = {"pattern": PATTERNS[i % len(PATTERNS)], "n": 500,
                     "working_set": 80, "seed": i, "prefetcher": "stride",
                     "sim": {"prefetch_delay_accesses": 1}}
        if i % learned_every == 0:
            job["prefetcher"] = "cls-hebbian"
            job["cls"] = {"vocab": 48, "seed": 4}
        jobs.append(job)
    return jobs


def test_materialize_lane_spec_matches_inline_recipe() -> None:
    """A materialized CLS lane equals a hand-built one, and same-recipe
    lanes share one prototype (hence one stacked fleet group)."""
    prototypes: dict = {}
    job = _lane_jobs(1)[0]
    spec = materialize_lane_spec(job, prototypes)
    twin = materialize_lane_spec(job, prototypes)
    assert len(prototypes) == 1
    assert isinstance(spec.prefetcher, CLSPrefetcher)
    assert isinstance(twin.prefetcher, CLSPrefetcher)
    assert (spec.prefetcher.fleet_group_key()
            == twin.prefetcher.fleet_group_key())
    assert spec.config.prefetch_delay_accesses == 1
    reference = simulate(spec.trace, spec.prefetcher, config=spec.config,
                         backend="numpy")
    want = simulate(twin.trace, twin.prefetcher, config=twin.config,
                    backend="numpy")
    assert reference.stats.as_dict() == want.stats.as_dict()
    with pytest.raises(ValueError, match="unknown lane-job prefetcher"):
        materialize_lane_spec({"pattern": "stride", "n": 100,
                               "prefetcher": "bogus"}, {})


def test_fleet_jobs_sharded_matches_serial() -> None:
    """jobs=2 pooled rollups are bit-identical to the serial run, in
    job order, for mixed stride + learned lanes."""
    lane_jobs = _lane_jobs(6)
    serial = run_fleet_jobs(lane_jobs, jobs=1, backend="numpy",
                            record_miss_indices=True)
    sharded = run_fleet_jobs(lane_jobs, jobs=2, backend="numpy",
                             record_miss_indices=True)
    assert serial.n_shards == 1 and serial.jobs == 1
    assert sharded.n_shards == 2 and sharded.jobs == 2
    assert serial.n_lanes == sharded.n_lanes == 6
    strip = ("wall_time_s",)
    for lane_a, lane_b in zip(serial.lanes, sharded.lanes):
        trimmed_a = {k: v for k, v in lane_a.items() if k not in strip}
        trimmed_b = {k: v for k, v in lane_b.items() if k not in strip}
        assert trimmed_a == trimmed_b
    # And both match per-lane simulate() references.
    prototypes: dict = {}
    for job, lane in zip(lane_jobs, serial.lanes):
        spec = materialize_lane_spec(job, prototypes, backend="numpy")
        reference = simulate(spec.trace, spec.prefetcher,
                             config=spec.config, backend="numpy",
                             record_miss_indices=True)
        assert lane["stats"] == reference.stats.as_dict()
        assert lane["miss_indices"] == reference.miss_indices


def test_fleet_jobs_scalar_escape_hatch_identical() -> None:
    """stacked_cls=False yields the same rollups (zero-regression)."""
    lane_jobs = _lane_jobs(4, learned_every=2)
    stacked = run_fleet_jobs(lane_jobs, jobs=1, backend="numpy")
    scalar = run_fleet_jobs(lane_jobs, jobs=1, backend="numpy",
                            stacked_cls=False)
    for lane_a, lane_b in zip(stacked.lanes, scalar.lanes):
        assert lane_a["stats"] == lane_b["stats"]


def test_fleet_jobs_manifest_round_trip(tmp_path) -> None:
    lane_jobs = _lane_jobs(4)
    report = run_fleet_jobs(lane_jobs, jobs=2, backend="numpy",
                            record_miss_indices=True)
    path = write_fleet_jobs_manifest(report, tmp_path)
    assert path.name == "fleet-4x-2j-numpy.jsonl"
    lines = [json.loads(line)
             for line in path.read_text().strip().splitlines()]
    head, lanes = lines[0], lines[1:]
    assert head["record"] == "fleet_manifest"
    assert head["n_lanes"] == 4
    assert head["jobs"] == 2
    assert head["n_shards"] == 2
    assert "env" in head and "python" in head["env"]
    assert len(lanes) == 4
    for lane in lanes:
        assert lane["record"] == "fleet_lane"
        # Bulk payloads stay out of the manifest.
        assert "stats" not in lane and "miss_indices" not in lane
