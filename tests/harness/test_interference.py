"""Tests for the Figure 3 interference harness.

These are the paper's central qualitative claims, on a scaled-down
configuration so the test stays fast:

1. learning pattern B online makes the LSTM forget pattern A;
2. interleaved replay at 0.1x lr prevents the forgetting.
"""

from __future__ import annotations

import pytest

from repro.harness.interference import (
    InterferenceConfig,
    pattern_class_sequences,
    run_interference,
)
from repro.harness.models import experiment_lstm

# The paper's protocol scale: 1000 accesses per pattern (§2.2).  Seed 3
# gives a pointer-chase layout (under the SeedSequence.spawn child-seed
# derivation) where the no-replay arm forgets catastrophically (~0.84)
# and the replay arm retains A almost perfectly (~0.02 forgetting).
CFG = InterferenceConfig(n_accesses=1000, working_set=50, probe_len=60,
                         probe_every=500, seed=3)


def lstm_factory(vocab: int):
    return experiment_lstm(vocab, seed=0)


@pytest.fixture(scope="module")
def no_replay():
    return run_interference(lstm_factory, "stride", "pointer_chase",
                            replay=False, config=CFG)


@pytest.fixture(scope="module")
def with_replay():
    return run_interference(lstm_factory, "stride", "pointer_chase",
                            replay=True, config=CFG)


class TestSequences:
    def test_shared_vocab_sequences(self):
        seq_a, seq_b = pattern_class_sequences("stride", "pointer_chase", CFG)
        # each phase loses its first access to delta encoding
        assert len(seq_a) == CFG.n_accesses - 1
        assert len(seq_b) == CFG.n_accesses - 1
        assert max(seq_a + seq_b) < CFG.vocab_size

    def test_stride_sequence_nearly_constant(self):
        seq_a, _ = pattern_class_sequences("stride", "pointer_chase", CFG)
        # the in-run delta class plus the working-set wraparound class
        assert len(set(seq_a)) <= 2


class TestInterference:
    def test_pattern_a_learned_first(self, no_replay):
        assert no_replay.summary.conf_a_before > 0.9

    def test_catastrophic_interference_without_replay(self, no_replay):
        assert no_replay.summary.forgetting > 0.3
        assert no_replay.summary.conf_b_after > 0.5  # B actually learned

    def test_replay_prevents_forgetting(self, no_replay, with_replay):
        assert with_replay.summary.conf_a_after > 0.8
        assert (with_replay.summary.forgetting
                < no_replay.summary.forgetting - 0.2)

    def test_replay_does_not_block_new_learning(self, with_replay):
        assert with_replay.summary.conf_b_after > 0.5

    def test_replay_pairs_counted(self, with_replay):
        assert with_replay.replayed_pairs > 0

    def test_curves_recorded(self, no_replay):
        assert no_replay.curve_a.values
        assert no_replay.curve_b.values
        # the old-pattern curve visits a low point during B's training
        assert no_replay.curve_a.minimum() < no_replay.summary.conf_a_before
