"""Tests for the oracle-window prefetcher."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.oracle import OracleWindowPrefetcher
from repro.memsim.events import MissEvent
from repro.memsim.simulator import SimConfig, baseline_misses, simulate
from repro.patterns.generators import PatternSpec, pointer_chase
from repro.patterns.trace import Trace


def trace_of_pages(pages: list[int]) -> Trace:
    return Trace(name="t", addresses=np.array(pages, dtype=np.int64) * 4096)


class TestOracle:
    def test_returns_next_distinct_pages(self):
        t = trace_of_pages([1, 2, 2, 3, 4])
        oracle = OracleWindowPrefetcher(t, degree=2)
        event = MissEvent(index=0, address=4096, page=1, stream_id=0, timestamp=0)
        assert oracle.on_miss(event) == [2, 3]

    def test_skips_current_page(self):
        t = trace_of_pages([1, 1, 1, 5])
        oracle = OracleWindowPrefetcher(t, degree=1)
        event = MissEvent(index=0, address=4096, page=1, stream_id=0, timestamp=0)
        assert oracle.on_miss(event) == [5]

    def test_end_of_trace(self):
        t = trace_of_pages([1, 2])
        oracle = OracleWindowPrefetcher(t, degree=4)
        event = MissEvent(index=1, address=2 * 4096, page=2, stream_id=0,
                          timestamp=0)
        assert oracle.on_miss(event) == []

    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            OracleWindowPrefetcher(trace_of_pages([1]), degree=0)

    def test_upper_bounds_learning_prefetchers(self):
        """Oracle with generous degree removes nearly all capacity misses."""
        t = pointer_chase(PatternSpec(n=1000, working_set=80,
                                      element_size=4096, seed=0))
        cfg = SimConfig(memory_fraction=0.5)
        base = baseline_misses(t, cfg)
        run = simulate(t, OracleWindowPrefetcher(t, degree=8), cfg)
        assert run.percent_misses_removed(base) > 70.0
