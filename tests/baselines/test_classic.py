"""Tests for the classic baseline prefetchers."""

from __future__ import annotations

import pytest

from repro.baselines.classic import (
    MarkovPrefetcher,
    NextLinePrefetcher,
    RandomPrefetcher,
    StridePrefetcher,
)
from repro.memsim.events import MissEvent


def miss(index: int, page: int, stream: int = 0) -> MissEvent:
    return MissEvent(index=index, address=page * 4096, page=page,
                     stream_id=stream, timestamp=index * 100)


class TestNextLine:
    def test_degree_pages(self):
        p = NextLinePrefetcher(degree=3)
        assert p.on_miss(miss(0, 10)) == [11, 12, 13]

    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            NextLinePrefetcher(degree=0)


class TestStride:
    def test_detects_constant_stride(self):
        p = StridePrefetcher(degree=2, threshold=2)
        out = []
        for i, page in enumerate([0, 3, 6, 9, 12]):
            out = p.on_miss(miss(i, page))
        assert out == [15, 18]

    def test_needs_confidence(self):
        p = StridePrefetcher(degree=1, threshold=2)
        assert p.on_miss(miss(0, 0)) == []
        assert p.on_miss(miss(1, 5)) == []   # first delta: confidence 1
        assert p.on_miss(miss(2, 10)) == [15]

    def test_irregular_stream_silent(self):
        p = StridePrefetcher(degree=1, threshold=2)
        outputs = [p.on_miss(miss(i, page))
                   for i, page in enumerate([0, 7, 2, 9, 1, 8])]
        assert all(o == [] for o in outputs)

    def test_per_stream_state(self):
        p = StridePrefetcher(degree=1, threshold=2)
        # interleaved streams with different strides
        for i in range(4):
            p.on_miss(miss(2 * i, i * 2, stream=0))
            p.on_miss(miss(2 * i + 1, 100 + i * 5, stream=1))
        assert p.on_miss(miss(8, 8, stream=0)) == [10]
        assert p.on_miss(miss(9, 120, stream=1)) == [125]

    def test_zero_delta_ignored(self):
        p = StridePrefetcher(degree=1, threshold=1)
        p.on_miss(miss(0, 4))
        assert p.on_miss(miss(1, 4)) == []


class TestMarkov:
    def test_learns_successor(self):
        p = MarkovPrefetcher(degree=1)
        for _ in range(3):
            p.on_miss(miss(0, 1))
            p.on_miss(miss(1, 9))
        assert p.on_miss(miss(2, 1)) == [9]

    def test_ranked_by_frequency(self):
        p = MarkovPrefetcher(degree=2)
        for nxt in (5, 5, 5, 7):
            p.on_miss(miss(0, 1))
            p.on_miss(miss(1, nxt))
        predictions = p.on_miss(miss(2, 1))
        assert predictions[0] == 5

    def test_table_bounded(self):
        p = MarkovPrefetcher(degree=1, table_size=4)
        for page in range(100):
            p.on_miss(miss(page, page))
        assert len(p._table) <= 4

    def test_successors_bounded(self):
        p = MarkovPrefetcher(degree=1, successors_per_entry=2)
        for nxt in range(10):
            p.on_miss(miss(0, 1))
            p.on_miss(miss(1, 50 + nxt))
        assert len(p._table[1]) <= 2

    def test_unknown_page_no_prediction(self):
        p = MarkovPrefetcher()
        assert p.on_miss(miss(0, 42)) == []


class TestRandom:
    def test_degree_and_radius(self):
        p = RandomPrefetcher(degree=5, radius=3, seed=0)
        pages = p.on_miss(miss(0, 100))
        assert len(pages) <= 5
        assert all(97 <= page <= 103 for page in pages)

    def test_never_negative(self):
        p = RandomPrefetcher(degree=8, radius=50, seed=1)
        pages = p.on_miss(miss(0, 1))
        assert all(page >= 0 for page in pages)

    def test_deterministic_with_seed(self):
        a = RandomPrefetcher(degree=3, seed=9)
        b = RandomPrefetcher(degree=3, seed=9)
        assert a.on_miss(miss(0, 10)) == b.on_miss(miss(0, 10))
