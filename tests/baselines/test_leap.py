"""Tests for the Leap-style majority-delta prefetcher."""

from __future__ import annotations

import pytest

from repro.baselines.leap import LeapPrefetcher
from repro.memsim.events import MissEvent
from repro.memsim.simulator import SimConfig, baseline_misses, simulate
from repro.patterns.generators import PatternSpec, pointer_chase, stride


def miss(index: int, page: int, stream: int = 0) -> MissEvent:
    return MissEvent(index=index, address=page * 4096, page=page,
                     stream_id=stream, timestamp=index * 100)


class TestValidation:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LeapPrefetcher(window=1)
        with pytest.raises(ValueError):
            LeapPrefetcher(max_degree=0)
        with pytest.raises(ValueError):
            LeapPrefetcher(majority_fraction=0.0)


class TestMajorityDetection:
    def test_detects_clean_stride(self):
        leap = LeapPrefetcher(max_degree=4)
        out: list[int] = []
        for i, page in enumerate(range(0, 40, 2)):
            out = leap.on_miss(miss(i, page))
        assert out
        last_page = 38
        assert out[0] == last_page + 2
        assert all(b - a == 2 for a, b in zip(out, out[1:]))

    def test_tolerates_minority_noise(self):
        """A mostly-strided stream with occasional jumps keeps the trend."""
        leap = LeapPrefetcher(window=8, max_degree=4)
        pages = [0, 1, 2, 3, 100, 4, 5, 6, 7]
        out: list[int] = []
        for i, page in enumerate(pages):
            out = leap.on_miss(miss(i, page))
        assert out and out[0] == 8

    def test_silent_on_random_stream(self):
        leap = LeapPrefetcher(window=8)
        outputs = []
        for i, page in enumerate([3, 77, 12, 95, 4, 60, 33, 81, 17, 50]):
            outputs.append(leap.on_miss(miss(i, page)))
        assert all(not o for o in outputs)

    def test_degree_ramps_up(self):
        leap = LeapPrefetcher(max_degree=8)
        lengths = []
        for i in range(12):
            lengths.append(len(leap.on_miss(miss(i, i))))
        assert max(lengths) == 8
        assert lengths[-1] >= lengths[2]

    def test_backoff_after_trend_break(self):
        leap = LeapPrefetcher(window=4, max_degree=8)
        for i in range(10):
            leap.on_miss(miss(i, i))
        # break the trend with alternating jumps
        for i, page in enumerate([50, 9, 71, 13], start=10):
            out = leap.on_miss(miss(i, page))
        assert out == []

    def test_per_stream_trends(self):
        leap = LeapPrefetcher(max_degree=2)
        for i in range(6):
            leap.on_miss(miss(2 * i, i, stream=0))            # +1 stride
            leap.on_miss(miss(2 * i + 1, 100 + 3 * i, stream=1))  # +3 stride
        assert leap.on_miss(miss(12, 6, stream=0))[0] == 7
        assert leap.on_miss(miss(13, 118, stream=1))[0] == 121

    def test_never_negative_pages(self):
        leap = LeapPrefetcher(max_degree=4)
        out: list[int] = []
        for i, page in enumerate(range(10, 0, -1)):
            out = leap.on_miss(miss(i, page))
        assert all(p >= 0 for p in out)


class TestEndToEnd:
    def test_covers_strided_trace(self):
        trace = stride(PatternSpec(n=1500, working_set=200, element_size=4096))
        cfg = SimConfig(memory_fraction=0.5)
        base = baseline_misses(trace, cfg)
        run = simulate(trace, LeapPrefetcher(max_degree=8), cfg)
        assert run.percent_misses_removed(base) > 50.0

    def test_cannot_learn_pointer_chase(self):
        trace = pointer_chase(PatternSpec(n=1500, working_set=150,
                                          element_size=4096, seed=2))
        cfg = SimConfig(memory_fraction=0.5)
        base = baseline_misses(trace, cfg)
        run = simulate(trace, LeapPrefetcher(max_degree=8), cfg)
        assert run.percent_misses_removed(base) < 5.0
