"""Tests for the CPU-GPU UVM system simulator."""

from __future__ import annotations

import pytest

from repro.baselines import NextLinePrefetcher
from repro.patterns.generators import PatternSpec, stride
from repro.systems.driver import PerStreamPrefetcher
from repro.systems.uvm import UVMSystem


def stream_traces(n: int = 4, length: int = 400):
    return [stride(PatternSpec(n=length, working_set=100, element_size=4096,
                               base=0x1000_0000 * (i + 1), seed=i))
            for i in range(n)]


class TestValidation:
    def test_needs_traces(self):
        with pytest.raises(ValueError):
            UVMSystem(stream_traces=[])

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            UVMSystem(stream_traces=stream_traces(), memory_fraction=0)


class TestLockstep:
    def test_processes_every_access(self):
        system = UVMSystem(stream_traces=stream_traces(3, 200))
        result = system.run_no_prefetch()
        assert result.accesses == 600
        assert result.rounds >= 200

    def test_fault_batching_cheaper_than_serial(self):
        """Concurrent faults in one round share one fault-handling latency."""
        system = UVMSystem(stream_traces=stream_traces(4, 200),
                           memory_fraction=0.25)
        result = system.run_no_prefetch()
        serial_cost = result.total_faults * system.fabric.remote_fetch_ns
        assert result.total_time_ns < serial_cost

    def test_unequal_stream_lengths(self):
        traces = stream_traces(2, 300)
        traces[1] = traces[1].slice(0, 50)
        result = UVMSystem(stream_traces=traces).run_no_prefetch()
        assert result.accesses == 350

    def test_prefetching_increases_throughput(self):
        system = UVMSystem(stream_traces=stream_traces(4, 400),
                           memory_fraction=0.5, prefetch_delay_rounds=1)
        base = system.run_no_prefetch()
        run = system.run(PerStreamPrefetcher(
            factory=lambda: NextLinePrefetcher(degree=2)))
        assert run.total_faults < base.total_faults
        assert run.throughput_accesses_per_us > base.throughput_accesses_per_us

    def test_speedup_metric(self):
        system = UVMSystem(stream_traces=stream_traces(2, 200))
        base = system.run_no_prefetch()
        assert base.speedup_over(base) == pytest.approx(1.0)

    def test_fault_rate(self):
        system = UVMSystem(stream_traces=stream_traces(1, 100),
                           memory_fraction=1.0)
        result = system.run_no_prefetch()
        assert 0.0 < result.fault_rate <= 1.0
