"""Tests for stream-aware prefetcher composition."""

from __future__ import annotations

import pytest

from repro.memsim.events import MissEvent
from repro.systems.driver import PerStreamPrefetcher, SharedStreamPrefetcher


class Recorder:
    """Counts misses it sees; echoes the next page."""

    instances = 0

    def __init__(self):
        Recorder.instances += 1
        self.name = f"rec{Recorder.instances}"
        self.seen: list[int] = []

    def on_miss(self, event: MissEvent) -> list[int]:
        self.seen.append(event.stream_id)
        return [event.page + 1]


def miss(stream: int, page: int = 1) -> MissEvent:
    return MissEvent(index=0, address=page * 4096, page=page,
                     stream_id=stream, timestamp=0)


class TestShared:
    def test_passthrough(self):
        inner = Recorder()
        shared = SharedStreamPrefetcher(inner)
        assert shared.on_miss(miss(0)) == [2]
        assert shared.on_miss(miss(7)) == [2]
        assert inner.seen == [0, 7]

    def test_name_derived(self):
        inner = Recorder()
        assert inner.name in SharedStreamPrefetcher(inner).name


class TestPerStream:
    def test_routes_by_stream(self):
        instances: list[Recorder] = []

        def factory():
            r = Recorder()
            instances.append(r)
            return r

        demux = PerStreamPrefetcher(factory=factory)
        demux.on_miss(miss(0))
        demux.on_miss(miss(1))
        demux.on_miss(miss(0))
        assert demux.n_streams == 2
        assert instances[0].seen == [0, 0]
        assert instances[1].seen == [1]

    def test_overflow_shared_instance(self):
        demux = PerStreamPrefetcher(factory=Recorder, max_streams=2)
        for stream in range(5):
            demux.on_miss(miss(stream))
        assert demux.n_streams == 2
        assert demux._overflow is not None
        assert demux._overflow.seen == [2, 3, 4]

    def test_rejects_bad_max(self):
        with pytest.raises(ValueError):
            PerStreamPrefetcher(factory=Recorder, max_streams=0)
