"""Tests for the disaggregated-memory system simulator."""

from __future__ import annotations

import pytest

from repro.baselines import NextLinePrefetcher
from repro.patterns.generators import PatternSpec, stride
from repro.systems.disaggregated import DisaggregatedSystem
from repro.systems.driver import SharedStreamPrefetcher


def node_traces(n: int = 2, length: int = 600):
    return [stride(PatternSpec(n=length, working_set=100, element_size=4096,
                               base=0x1000_0000 * (i + 1), seed=i))
            for i in range(n)]


class TestValidation:
    def test_needs_traces(self):
        with pytest.raises(ValueError):
            DisaggregatedSystem(node_traces=[])

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            DisaggregatedSystem(node_traces=node_traces(), memory_fraction=0)


class TestRuns:
    def test_baseline_all_nodes_present(self):
        system = DisaggregatedSystem(node_traces=node_traces(3),
                                     prefetch_delay_accesses=0)
        result = system.run_no_prefetch()
        assert len(result.nodes) == 3
        assert result.placement == "none"
        assert all(n.accesses == 600 for n in result.nodes)

    def test_misses_cost_remote_latency(self):
        system = DisaggregatedSystem(node_traces=node_traces(1),
                                     prefetch_delay_accesses=0)
        result = system.run_no_prefetch()
        node = result.nodes[0]
        expected = (node.demand_misses * system.fabric.remote_fetch_ns
                    + (node.accesses - node.demand_misses)
                    * system.fabric.local_access_ns)
        assert node.total_stall_ns == expected

    def test_decentralized_prefetch_reduces_latency(self):
        system = DisaggregatedSystem(node_traces=node_traces(2),
                                     prefetch_delay_accesses=0)
        base = system.run_no_prefetch()
        run = system.run_decentralized(lambda: NextLinePrefetcher(degree=2))
        assert run.mean_access_ns < base.mean_access_ns
        assert run.speedup_over(base) > 1.1

    def test_centralized_sees_all_streams(self):
        seen_streams = set()

        class Spy:
            name = "spy"

            def on_miss(self, event):
                seen_streams.add(event.stream_id)
                return []

        system = DisaggregatedSystem(node_traces=node_traces(3),
                                     prefetch_delay_accesses=0)
        system.run_centralized(lambda: SharedStreamPrefetcher(Spy()))
        assert seen_streams == {0, 1, 2}

    def test_centralized_handles_unequal_lengths(self):
        traces = node_traces(2)
        traces[1] = traces[1].slice(0, 100)
        system = DisaggregatedSystem(node_traces=traces,
                                     prefetch_delay_accesses=0)
        result = system.run_centralized(
            lambda: SharedStreamPrefetcher(NextLinePrefetcher()))
        assert result.nodes[0].accesses == 600
        assert result.nodes[1].accesses == 100

    def test_speedup_identity(self):
        system = DisaggregatedSystem(node_traces=node_traces(1),
                                     prefetch_delay_accesses=0)
        base = system.run_no_prefetch()
        assert base.speedup_over(base) == pytest.approx(1.0)
